#include "scion/scmp.hpp"

#include <algorithm>

namespace scion::svc {

void PathManager::set_paths(std::vector<EndToEndPath> paths) {
  paths_.clear();
  paths_.reserve(paths.size());
  for (EndToEndPath& p : paths) paths_.push_back(Entry{std::move(p), true});
  active_ = 0;
  connected_ = !paths_.empty();
}

const EndToEndPath* PathManager::active() const {
  if (!connected_) return nullptr;
  return &paths_[active_].path;
}

bool PathManager::uses_link(const EndToEndPath& path,
                            topo::LinkIndex link) const {
  return std::find(path.links.begin(), path.links.end(), link) !=
         path.links.end();
}

void PathManager::pick_active() {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i].usable) {
      if (connected_ && i != active_) ++failovers_;
      active_ = i;
      connected_ = true;
      return;
    }
  }
  connected_ = false;
}

bool PathManager::notify_revocation(topo::LinkIndex failed_link) {
  bool active_hit = false;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    Entry& e = paths_[i];
    if (e.usable && uses_link(e.path, failed_link)) {
      e.usable = false;
      if (connected_ && i == active_) active_hit = true;
    }
  }
  if (active_hit) pick_active();
  return connected_;
}

void PathManager::notify_restored(topo::LinkIndex link) {
  for (Entry& e : paths_) {
    if (!e.usable && uses_link(e.path, link)) e.usable = true;
  }
  if (!connected_) pick_active();
}

std::size_t PathManager::usable_paths() const {
  return static_cast<std::size_t>(
      std::count_if(paths_.begin(), paths_.end(),
                    [](const Entry& e) { return e.usable; }));
}

}  // namespace scion::svc
