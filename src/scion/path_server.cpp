#include "scion/path_server.hpp"

#include <algorithm>

namespace scion::svc {

util::Bytes segment_response_bytes(std::size_t n_segments,
                                   util::Bytes total_segment_bytes) {
  return kSegmentResponseHeaderBytes + util::Bytes{n_segments * 4} +
         total_segment_bytes;
}

util::Bytes registration_bytes(std::span<const PathSegment> segments) {
  util::Bytes total = kRegistrationHeaderBytes;
  for (const PathSegment& s : segments) total += util::Bytes{4} + s.wire_size();
  return total;
}

void PathServer::insert_segment(SegmentMap& map, topo::AsIndex key,
                                PathSegment segment) {
  auto& bucket = map[key];
  // Same path: keep the freshest instance.
  for (PathSegment& existing : bucket) {
    if (existing.key() == segment.key()) {
      if (segment.expiry() > existing.expiry()) existing = std::move(segment);
      return;
    }
  }
  if (per_key_limit_ == 0 || bucket.size() < per_key_limit_) {
    bucket.push_back(std::move(segment));
    return;
  }
  // Evict the worst under shortest-fresh preference if the candidate beats it.
  auto worse = [](const PathSegment& x, const PathSegment& y) {
    if (x.length() != y.length()) return x.length() > y.length();
    return x.expiry() < y.expiry();
  };
  auto victim = bucket.begin();
  for (auto it = bucket.begin() + 1; it != bucket.end(); ++it) {
    if (worse(*it, *victim)) victim = it;
  }
  if (worse(*victim, segment)) *victim = std::move(segment);
}

std::vector<PathSegment> PathServer::valid_of(const SegmentMap& map,
                                              topo::AsIndex key,
                                              util::TimePoint now) {
  std::vector<PathSegment> out;
  const auto it = map.find(key);
  if (it == map.end()) return out;
  for (const PathSegment& s : it->second) {
    if (now < s.expiry()) out.push_back(s);
  }
  return out;
}

void PathServer::register_down_segment(PathSegment segment) {
  ++stats_.registrations;
  ++stats_.segments_registered;
  const topo::AsIndex leaf = segment.terminal_as();
  insert_segment(down_by_leaf_, leaf, std::move(segment));
}

std::vector<PathSegment> PathServer::down_segments(topo::AsIndex leaf,
                                                   util::TimePoint now) const {
  return valid_of(down_by_leaf_, leaf, now);
}

void PathServer::register_core_segment(PathSegment segment) {
  ++stats_.segments_registered;
  const topo::AsIndex origin = segment.origin_as();
  insert_segment(core_by_origin_, origin, std::move(segment));
}

std::vector<PathSegment> PathServer::core_segments(topo::AsIndex origin_core,
                                                   util::TimePoint now) const {
  return valid_of(core_by_origin_, origin_core, now);
}

void PathServer::register_up_segment(PathSegment segment) {
  ++stats_.segments_registered;
  for (PathSegment& existing : up_) {
    if (existing.key() == segment.key()) {
      if (segment.expiry() > existing.expiry()) existing = std::move(segment);
      return;
    }
  }
  if (per_key_limit_ == 0 || up_.size() < per_key_limit_) {
    up_.push_back(std::move(segment));
  } else {
    // Replace the oldest.
    auto victim = std::min_element(
        up_.begin(), up_.end(), [](const PathSegment& a, const PathSegment& b) {
          return a.expiry() < b.expiry();
        });
    if (segment.expiry() > victim->expiry()) *victim = std::move(segment);
  }
}

std::vector<PathSegment> PathServer::up_segments(util::TimePoint now) const {
  std::vector<PathSegment> out;
  for (const PathSegment& s : up_) {
    if (now < s.expiry()) out.push_back(s);
  }
  return out;
}

std::size_t PathServer::revoke_link(topo::LinkIndex link) {
  ++stats_.revocations;
  std::size_t dropped = 0;
  auto contains = [link](const PathSegment& s) {
    return std::find(s.links.begin(), s.links.end(), link) != s.links.end();
  };
  // Per-bucket erase_if with a commutative integer total; visit order is
  // irrelevant. simlint:allow(unordered-iter)
  for (auto* map : {&down_by_leaf_, &core_by_origin_}) {
    for (auto& [key, bucket] : *map) {
      dropped += static_cast<std::size_t>(std::erase_if(bucket, contains));
    }
  }
  dropped += static_cast<std::size_t>(std::erase_if(up_, contains));
  return dropped;
}

void PathServer::cache_put(topo::AsIndex key,
                           std::vector<PathSegment> segments,
                           util::TimePoint now, util::Duration ttl) {
  cache_[key] = CacheEntry{std::move(segments), now + ttl};
}

std::optional<std::vector<PathSegment>> PathServer::cache_get(
    topo::AsIndex key, util::TimePoint now) {
  ++stats_.lookups;
  const auto it = cache_.find(key);
  if (it == cache_.end() || now >= it->second.expires) {
    ++stats_.cache_misses;
    return std::nullopt;
  }
  ++stats_.cache_hits;
  // Filter segments that expired before the cache entry.
  std::vector<PathSegment> out;
  for (const PathSegment& s : it->second.segments) {
    if (now < s.expiry()) out.push_back(s);
  }
  return out;
}

}  // namespace scion::svc
