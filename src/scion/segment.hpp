// Path segments (Section 2.2): the registered, terminated form of a PCB.
//
// Before an AS registers a path segment (or an endpoint uses it), the
// receiving AS appends a terminal entry (out_if = 0), so a segment's entry
// list covers every AS on it, origin first. Up- and down-path segments are
// the same object used in opposite directions; core segments connect two
// core ASes.
#pragma once

#include <vector>

#include "core/beacon_store.hpp"
#include "core/pcb.hpp"
#include "topology/topology.hpp"

namespace scion::svc {

using ctrl::PcbRef;

enum class SegmentType : std::uint8_t { kUp, kDown, kCore };

const char* to_string(SegmentType t);

/// A terminated path segment. `ases[0]` is the origin core AS and
/// `ases.back()` the AS that terminated (registered) it; `links[i]` connects
/// `ases[i]` and `ases[i+1]`.
struct PathSegment {
  SegmentType type{SegmentType::kDown};
  PcbRef pcb;  // terminal-extended PCB (entries == ases)
  std::vector<topo::AsIndex> ases;
  std::vector<topo::LinkIndex> links;

  topo::AsIndex origin_as() const { return ases.front(); }
  topo::AsIndex terminal_as() const { return ases.back(); }
  std::size_t length() const { return links.size(); }
  util::Bytes wire_size() const { return pcb->wire_size(); }
  util::TimePoint expiry() const { return pcb->expiry(); }

  /// Stable identity (terminal-extended path key).
  std::uint64_t key() const { return pcb->path_key(); }
};

/// Terminates a stored PCB at `owner`: appends the owner's AS entry (with
/// its peering links if `include_peers`) and resolves the AS sequence.
/// This is what a beacon server does right before registration.
PathSegment make_segment(const topo::Topology& topology,
                         const ctrl::StoredPcb& stored, topo::AsIndex owner,
                         SegmentType type, const crypto::SigningKey& sign_key,
                         const crypto::ForwardingKey& fwd_key,
                         bool include_peers = false);

}  // namespace scion::svc
