#include "scion/segment.hpp"

#include "util/check.hpp"


namespace scion::svc {

const char* to_string(SegmentType t) {
  switch (t) {
    case SegmentType::kUp:
      return "up";
    case SegmentType::kDown:
      return "down";
    case SegmentType::kCore:
      return "core";
  }
  return "?";
}

PathSegment make_segment(const topo::Topology& topology,
                         const ctrl::StoredPcb& stored, topo::AsIndex owner,
                         SegmentType type, const crypto::SigningKey& sign_key,
                         const crypto::ForwardingKey& fwd_key,
                         bool include_peers) {
  SCION_CHECK(stored.pcb && !stored.links.empty(),
              "segment conversion needs a resolved stored PCB");

  std::vector<ctrl::PeerEntry> peers;
  if (include_peers) {
    for (topo::LinkIndex l :
         topology.links_of_type(owner, topo::LinkType::kPeer)) {
      ctrl::PeerEntry p;
      p.peer_as = topology.as_id(topology.neighbor(l, owner));
      p.peer_if = topology.interface_of(l, owner);
      peers.push_back(p);
    }
  }

  const topo::IfId in_if = topology.interface_of(stored.links.back(), owner);
  PathSegment seg;
  seg.type = type;
  seg.pcb = std::make_shared<const ctrl::Pcb>(stored.pcb->extend_signed(
      topology.as_id(owner), in_if, topo::kNoInterface, std::move(peers),
      sign_key, fwd_key));
  seg.links = stored.links;
  seg.ases.reserve(seg.pcb->entries().size());
  for (const ctrl::AsEntry& e : seg.pcb->entries()) {
    const auto idx = topology.find(e.isd_as);
    SCION_CHECK(idx.has_value(), "segment AS missing from topology");
    seg.ases.push_back(*idx);
  }
  SCION_DCHECK(seg.ases.size() == seg.links.size() + 1,
               "segment must alternate AS, link, AS");
  SCION_DCHECK(seg.ases.back() == owner, "segment must end at its owner");
  return seg;
}

}  // namespace scion::svc
