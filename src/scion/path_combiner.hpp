// End-to-end path construction from path segments (Section 2.3).
//
// Hosts combine an up-path segment (traversed leaf-to-core), optionally a
// core-path segment, and a down-path segment (core-to-leaf). Shortcut paths
// avoid the core when the up- and down-segments share a non-core AS, and
// peering shortcuts cross a peering link advertised in both segments.
// Cryptographic protections (hop-field MAC chains, dataplane.hpp) ensure
// only these authorized combinations are forwardable.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "scion/segment.hpp"

namespace scion::svc {

struct EndToEndPath {
  enum class Kind : std::uint8_t {
    kUpCoreDown,  // three segments via the core
    kUpDown,      // up and down meet at the same core AS
    kShortcut,    // crossover at a shared non-core AS
    kPeering,     // crossover over a peering link
  };

  Kind kind{Kind::kUpCoreDown};
  /// Full AS sequence, src first.
  std::vector<topo::AsIndex> ases;
  /// links[i] connects ases[i] and ases[i+1].
  std::vector<topo::LinkIndex> links;

  /// The segments this path was combined from (up/core/down may be null
  /// depending on kind). Owned: a path stays usable after the segment
  /// buffers it was combined from are gone.
  std::shared_ptr<const PathSegment> up;
  std::shared_ptr<const PathSegment> core;
  std::shared_ptr<const PathSegment> down;
  /// For kShortcut/kPeering: index into up->ases / down->ases of the
  /// crossover ASes.
  std::size_t up_cut{0};
  std::size_t down_cut{0};
  /// For kPeering: the peering link crossed.
  std::optional<topo::LinkIndex> peer_link;

  std::size_t length() const { return links.size(); }
};

const char* to_string(EndToEndPath::Kind k);

struct CombineOptions {
  std::size_t max_paths{32};
  bool allow_shortcuts{true};
  bool allow_peering{true};
};

/// Enumerates loop-free end-to-end paths from `src` to `dst`, shortest
/// first, de-duplicated by link sequence. `up` segments must terminate at
/// `src`, `down` segments at `dst`; core segments are matched by their
/// terminal/origin core ASes.
std::vector<EndToEndPath> combine_segments(
    const topo::Topology& topology, topo::AsIndex src, topo::AsIndex dst,
    std::span<const PathSegment> up, std::span<const PathSegment> core,
    std::span<const PathSegment> down, const CombineOptions& options = {});

}  // namespace scion::svc
