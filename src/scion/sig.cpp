#include "scion/sig.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scion/dataplane.hpp"

namespace scion::svc {

std::optional<IpPrefix> IpPrefix::parse(const std::string& text) {
  unsigned octets[4] = {0, 0, 0, 0};
  unsigned length = 32;
  const char* p = text.c_str();
  const char* end = p + text.size();
  for (int i = 0; i < 4; ++i) {
    const auto r = std::from_chars(p, end, octets[i]);
    if (r.ec != std::errc{} || octets[i] > 255) return std::nullopt;
    p = r.ptr;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) {
    if (*p != '/') return std::nullopt;
    const auto r = std::from_chars(p + 1, end, length);
    if (r.ec != std::errc{} || r.ptr != end || length > 32) return std::nullopt;
  }
  IpPrefix prefix;
  prefix.address = (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) |
                   octets[3];
  prefix.length = static_cast<std::uint8_t>(length);
  return prefix;
}

std::string ip_to_string(std::uint32_t addr) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", addr >> 24,
                (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
  return buf;
}

void AsMapTable::add(IpPrefix prefix, topo::IsdAsId as) {
  entries_.push_back(Entry{prefix, as});
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& x, const Entry& y) {
                     return x.prefix.length > y.prefix.length;
                   });
}

std::optional<topo::IsdAsId> AsMapTable::lookup(std::uint32_t addr) const {
  // Entries are sorted by descending length: first hit = longest match.
  for (const Entry& e : entries_) {
    if (e.prefix.contains(addr)) return e.as;
  }
  return std::nullopt;
}

PathManager* Sig::paths_for(topo::AsIndex remote_as) {
  auto it = path_cache_.find(remote_as);
  if (it == path_cache_.end()) {
    ++stats_.path_resolutions;
    std::vector<EndToEndPath> paths =
        control_plane_.resolve_paths(local_as_, remote_as);
    if (paths.empty()) return nullptr;
    it = path_cache_.try_emplace(remote_as).first;
    it->second.set_paths(std::move(paths));
  }
  return &it->second;
}

Sig::EncapResult Sig::send_ip_packet(std::uint32_t dst_ip,
                                     util::Bytes payload_bytes) {
  ++stats_.packets_in;
  stats_.bytes_in += payload_bytes;
  EncapResult result;

  const std::optional<topo::IsdAsId> remote_id = asmap_.lookup(dst_ip);
  if (!remote_id) {
    ++stats_.packets_dropped_no_mapping;
    result.error = "no ASMap entry for " + ip_to_string(dst_ip);
    return result;
  }
  const auto remote = control_plane_.topology().find(*remote_id);
  if (!remote) {
    ++stats_.packets_dropped_no_mapping;
    result.error = "ASMap points at unknown AS " + remote_id->to_string();
    return result;
  }
  result.remote_as = *remote;

  // Local delivery needs no SCION encapsulation.
  if (*remote == local_as_) {
    ++stats_.packets_delivered;
    result.delivered = true;
    result.wire_bytes = payload_bytes;
    stats_.bytes_on_wire += payload_bytes;
    return result;
  }

  PathManager* manager = paths_for(*remote);
  if (manager == nullptr || manager->active() == nullptr) {
    ++stats_.packets_dropped_no_path;
    result.error = "no SCION path to " + remote_id->to_string();
    return result;
  }

  // Forward over the active path; a failure observed en route behaves like
  // an SCMP revocation (the border router reports the dead link).
  const EndToEndPath* path = manager->active();
  ForwardResult forwarded = control_plane_.dataplane().forward(
      *path, [this](topo::LinkIndex l) { return control_plane_.link_up(l); });
  if (!forwarded.delivered && forwarded.failed_link.has_value()) {
    const std::uint64_t before = manager->failovers();
    if (manager->notify_revocation(*forwarded.failed_link)) {
      stats_.failovers += manager->failovers() - before;
      SCION_METRIC_COUNT("sig.failovers", manager->failovers() - before);
      SCION_TRACE(obs::Category::kSig, control_plane_.simulator().now(),
                  "failover", {"remote", *remote},
                  {"failed_link", *forwarded.failed_link},
                  {"on_path", true});
      path = manager->active();
      forwarded = control_plane_.dataplane().forward(
          *path,
          [this](topo::LinkIndex l) { return control_plane_.link_up(l); });
    }
  }
  if (!forwarded.delivered) {
    ++stats_.packets_dropped_no_path;
    result.error = forwarded.error;
    return result;
  }

  ++stats_.packets_delivered;
  result.delivered = true;
  result.wire_bytes =
      payload_bytes + packet_header_bytes(*path) + kSigFramingBytes;
  stats_.bytes_on_wire += result.wire_bytes;
  return result;
}

void Sig::handle_revocation(topo::LinkIndex failed_link) {
  for (auto& [remote, manager] : path_cache_) {
    const std::uint64_t before = manager.failovers();
    manager.notify_revocation(failed_link);
    stats_.failovers += manager.failovers() - before;
    if (manager.failovers() != before) {
      SCION_METRIC_COUNT("sig.failovers", manager.failovers() - before);
      SCION_TRACE(obs::Category::kSig, control_plane_.simulator().now(),
                  "failover", {"remote", remote},
                  {"failed_link", failed_link}, {"on_path", false});
    }
  }
}

void Sig::handle_restoration(topo::LinkIndex link) {
  for (auto& [remote, manager] : path_cache_) manager.notify_restored(link);
}

}  // namespace scion::svc
