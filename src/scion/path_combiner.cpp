#include "scion/path_combiner.hpp"

#include "util/check.hpp"

#include <algorithm>
#include <unordered_set>

#include "crypto/sha256.hpp"

namespace scion::svc {

namespace {

/// Appends segment ASes/links from position `from_idx` walking towards the
/// terminal (forward direction).
void append_forward(EndToEndPath& path, const PathSegment& seg,
                    std::size_t from_idx, bool include_first_as) {
  for (std::size_t i = from_idx; i + 1 < seg.ases.size(); ++i) {
    if (i != from_idx || include_first_as) path.ases.push_back(seg.ases[i]);
    path.links.push_back(seg.links[i]);
  }
  path.ases.push_back(seg.ases.back());
}

/// Appends segment ASes/links from the terminal back to position `to_idx`
/// (reverse direction), optionally skipping the terminal AS itself.
void append_reverse(EndToEndPath& path, const PathSegment& seg,
                    std::size_t to_idx, bool include_terminal_as) {
  if (include_terminal_as) path.ases.push_back(seg.ases.back());
  for (std::size_t i = seg.ases.size() - 1; i > to_idx; --i) {
    path.links.push_back(seg.links[i - 1]);
    path.ases.push_back(seg.ases[i - 1]);
  }
}

bool loop_free(const EndToEndPath& path) {
  std::unordered_set<topo::AsIndex> seen;
  for (topo::AsIndex as : path.ases) {
    if (!seen.insert(as).second) return false;
  }
  return true;
}

std::uint64_t link_sequence_key(const EndToEndPath& path) {
  crypto::Sha256 h;
  for (topo::LinkIndex l : path.links) h.update_u32(l);
  return h.finalize().prefix64();
}

}  // namespace

const char* to_string(EndToEndPath::Kind k) {
  switch (k) {
    case EndToEndPath::Kind::kUpCoreDown:
      return "up+core+down";
    case EndToEndPath::Kind::kUpDown:
      return "up+down";
    case EndToEndPath::Kind::kShortcut:
      return "shortcut";
    case EndToEndPath::Kind::kPeering:
      return "peering";
  }
  return "?";
}

std::vector<EndToEndPath> combine_segments(
    const topo::Topology& topology, topo::AsIndex src, topo::AsIndex dst,
    std::span<const PathSegment> up, std::span<const PathSegment> core,
    std::span<const PathSegment> down, const CombineOptions& options) {
  std::vector<EndToEndPath> out;
  if (src == dst) return out;

  // Paths own shared copies of their segments; one copy per input segment.
  std::unordered_map<const PathSegment*, std::shared_ptr<const PathSegment>>
      shared;
  auto share = [&shared](const PathSegment& seg) {
    auto& p = shared[&seg];
    if (!p) p = std::make_shared<const PathSegment>(seg);
    return p;
  };

  auto consider = [&](EndToEndPath&& path) {
    if (!loop_free(path)) return;
    SCION_DCHECK(path.ases.size() == path.links.size() + 1,
                 "combined path must alternate AS, link, AS");
    SCION_DCHECK(path.ases.front() == src && path.ases.back() == dst,
                 "combined path must run from src to dst");
    out.push_back(std::move(path));
  };

  // A core-AS source has no up segments: it reaches destinations directly
  // via its down segments and via reversed core segments.
  if (topology.is_core(src)) {
    for (const PathSegment& d : down) {
      if (d.terminal_as() != dst) continue;
      if (d.origin_as() == src) {
        EndToEndPath path;
        path.kind = EndToEndPath::Kind::kUpDown;  // single-segment
        path.down = share(d);
        append_forward(path, d, 0, /*include_first_as=*/true);
        consider(std::move(path));
      }
      for (const PathSegment& c : core) {
        if (c.terminal_as() != src || c.origin_as() != d.origin_as()) continue;
        EndToEndPath path;
        path.kind = EndToEndPath::Kind::kUpCoreDown;
        path.core = share(c);
        path.down = share(d);
        append_reverse(path, c, 0, /*include_terminal_as=*/true);
        append_forward(path, d, 0, /*include_first_as=*/false);
        consider(std::move(path));
      }
    }
    // Core-to-core: a reversed core segment alone.
    if (topology.is_core(dst)) {
      for (const PathSegment& c : core) {
        if (c.terminal_as() != src || c.origin_as() != dst) continue;
        EndToEndPath path;
        path.kind = EndToEndPath::Kind::kUpCoreDown;
        path.core = share(c);
        append_reverse(path, c, 0, /*include_terminal_as=*/true);
        consider(std::move(path));
      }
    }
  }

  for (const PathSegment& u : up) {
    if (u.terminal_as() != src) continue;

    // A core-AS destination needs no down segment: the up segment's core
    // plus (optionally) a core segment reach it.
    if (topology.is_core(dst)) {
      if (u.origin_as() == dst) {
        EndToEndPath path;
        path.kind = EndToEndPath::Kind::kUpDown;  // single-segment
        path.up = share(u);
        append_reverse(path, u, 0, /*include_terminal_as=*/true);
        consider(std::move(path));
      }
      for (const PathSegment& c : core) {
        if (c.terminal_as() != u.origin_as() || c.origin_as() != dst) continue;
        EndToEndPath path;
        path.kind = EndToEndPath::Kind::kUpCoreDown;
        path.up = share(u);
        path.core = share(c);
        append_reverse(path, u, 0, /*include_terminal_as=*/true);
        append_reverse(path, c, 0, /*include_terminal_as=*/false);
        consider(std::move(path));
      }
    }

    for (const PathSegment& d : down) {
      if (d.terminal_as() != dst) continue;

      // Up and down meet at the same core AS: two-segment path.
      if (u.origin_as() == d.origin_as()) {
        EndToEndPath path;
        path.kind = EndToEndPath::Kind::kUpDown;
        path.up = share(u);
        path.down = share(d);
        append_reverse(path, u, 0, /*include_terminal_as=*/true);
        append_forward(path, d, 0, /*include_first_as=*/false);
        consider(std::move(path));
      }

      // Shortcut: a shared AS below the core lets the path cross over
      // without visiting either origin.
      if (options.allow_shortcuts) {
        for (std::size_t i = 1; i < u.ases.size(); ++i) {
          for (std::size_t j = 1; j < d.ases.size(); ++j) {
            if (u.ases[i] != d.ases[j]) continue;
            EndToEndPath path;
            path.kind = EndToEndPath::Kind::kShortcut;
            path.up = share(u);
            path.down = share(d);
            path.up_cut = i;
            path.down_cut = j;
            append_reverse(path, u, i, /*include_terminal_as=*/true);
            append_forward(path, d, j, /*include_first_as=*/false);
            consider(std::move(path));
          }
        }
      }

      // Peering shortcut: an up-segment AS peers with a down-segment AS and
      // both segments advertise the same peering link.
      if (options.allow_peering) {
        const auto& u_entries = u.pcb->entries();
        const auto& d_entries = d.pcb->entries();
        for (std::size_t i = 1; i < u.ases.size(); ++i) {
          for (const ctrl::PeerEntry& pu : u_entries[i].peers) {
            for (std::size_t j = 1; j < d.ases.size(); ++j) {
              if (topology.as_id(d.ases[j]) != pu.peer_as) continue;
              for (const ctrl::PeerEntry& pd : d_entries[j].peers) {
                if (pd.peer_as != topology.as_id(u.ases[i])) continue;
                const auto lu =
                    topology.link_by_interface(u.ases[i], pu.peer_if);
                const auto ld =
                    topology.link_by_interface(d.ases[j], pd.peer_if);
                if (!lu || !ld || *lu != *ld) continue;  // different links
                EndToEndPath path;
                path.kind = EndToEndPath::Kind::kPeering;
                path.up = share(u);
                path.down = share(d);
                path.up_cut = i;
                path.down_cut = j;
                path.peer_link = *lu;
                append_reverse(path, u, i, /*include_terminal_as=*/true);
                path.links.push_back(*lu);
                append_forward(path, d, j, /*include_first_as=*/true);
                consider(std::move(path));
              }
            }
          }
        }
      }
    }

    // Three-segment paths via the core.
    for (const PathSegment& c : core) {
      if (c.terminal_as() != u.origin_as()) continue;
      for (const PathSegment& d : down) {
        if (d.terminal_as() != dst) continue;
        if (d.origin_as() != c.origin_as()) continue;
        EndToEndPath path;
        path.kind = EndToEndPath::Kind::kUpCoreDown;
        path.up = share(u);
        path.core = share(c);
        path.down = share(d);
        append_reverse(path, u, 0, /*include_terminal_as=*/true);
        append_reverse(path, c, 0, /*include_terminal_as=*/false);
        append_forward(path, d, 0, /*include_first_as=*/false);
        consider(std::move(path));
      }
    }
  }

  // Shortest first, stable; drop duplicates by link sequence; cap.
  std::stable_sort(out.begin(), out.end(),
                   [](const EndToEndPath& x, const EndToEndPath& y) {
                     return x.length() < y.length();
                   });
  std::unordered_set<std::uint64_t> seen;
  std::vector<EndToEndPath> unique;
  unique.reserve(std::min(out.size(), options.max_paths));
  for (EndToEndPath& p : out) {
    if (!seen.insert(link_sequence_key(p)).second) continue;
    unique.push_back(std::move(p));
    if (unique.size() >= options.max_paths) break;
  }
  return unique;
}

}  // namespace scion::svc
