#!/bin/sh
# CI gate: configure and build the asan-ubsan preset (ASan + UBSan,
# SCION_MPR_CHECKED=ON, -Werror), run the full test suite under the
# sanitizers, and lint the simulator sources with simlint. Any sanitizer
# report, failed test, warning, or determinism hazard fails the script.
#
# The test suite includes the telemetry smoke gate (obs_smoke_bench +
# obs_smoke_check fixtures): one small bench runs with --metrics-out,
# --trace-out, --trace-filter, and --bench-out, and tools/obs_check
# validates the emitted artifacts against their schemas. As a second,
# independent check this script runs a telemetry-instrumented
# bench_fig5_overhead (the acceptance figure), validates its artifacts, and
# diffs its BENCH report against the checked-in baseline with
# tools/bench_diff (deterministic fields gate exactly; see
# tools/bench_baseline/README.md).
#
# Usage: ./ci.sh [preset]   (default: asan-ubsan; try `tsan` or `checked`)
set -eu

preset="${1:-asan-ubsan}"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset"

case "$preset" in
  asan-ubsan) build_dir="build-asan" ;;
  tsan) build_dir="build-tsan" ;;
  checked) build_dir="build-checked" ;;
  *) build_dir="build" ;;
esac
# Determinism + architecture lint: simulator sources, benches, and tools.
# The observed module include graph lands in $build_dir/include_graph.dot
# (deterministic DOT) for review against DESIGN.md's dependency table, and
# the hot-path cost report is diffed against the checked-in baseline
# (tools/cost_baseline.json): any per-(file, rule) count increase inside an
# annotated hot region — even a simlint:allow-suppressed one — fails here
# until the baseline is updated deliberately. The shared-state inventory
# (mutable-global / unguarded-shared / guarded-member counts) gets the same
# gate against tools/state_baseline.json; a failure names the offending
# (file, rule) pair. See DESIGN.md "Concurrency discipline" for the
# regeneration recipe.
"$build_dir/tools/simlint" --dot="$build_dir/include_graph.dot" \
  --cost-report="$build_dir/cost_report.json" \
  --cost-baseline=tools/cost_baseline.json \
  --state-report="$build_dir/state_report.json" \
  --state-baseline=tools/state_baseline.json \
  src bench tools

# All lint artifacts are published for review: the include graph for
# DESIGN.md's dependency table, the cost report for hot-path cost triage,
# and the shared-state inventory for concurrency review.
artifact_dir="$build_dir/artifacts"
mkdir -p "$artifact_dir"
cp "$build_dir/include_graph.dot" "$build_dir/cost_report.json" \
   "$build_dir/state_report.json" "$artifact_dir/"
echo "ci: artifacts: $artifact_dir/include_graph.dot $artifact_dir/cost_report.json $artifact_dir/state_report.json"

# clang-tidy gate (check set pinned by .clang-tidy at the repo root, run
# against the compile database the configure step exports). The binary is
# pinned: CLANG_TIDY overrides, else the first pinned versioned name found
# wins, so an unpinned distro default cannot drift the check set. A runner
# without any of them fails hard — losing the gate must be explicit, via
# CI_ALLOW_MISSING_CLANG_TIDY=1 (used by minimal images that bake only the
# compiler toolchain; every run prints which path was taken).
clang_tidy="${CLANG_TIDY:-}"
if [ -z "$clang_tidy" ]; then
  for candidate in clang-tidy-19 clang-tidy-18 clang-tidy-17 clang-tidy; do
    if command -v "$candidate" >/dev/null 2>&1; then
      clang_tidy="$candidate"
      break
    fi
  done
fi
if [ -n "$clang_tidy" ]; then
  echo "ci: clang-tidy gate using $clang_tidy ($("$clang_tidy" --version | head -n 1))"
  find src -name '*.cpp' | sort | \
    xargs "$clang_tidy" -p "$build_dir" --quiet --warnings-as-errors='*'
elif [ "${CI_ALLOW_MISSING_CLANG_TIDY:-0}" = "1" ]; then
  echo "ci: WARNING: clang-tidy not found; gate skipped because CI_ALLOW_MISSING_CLANG_TIDY=1" >&2
else
  echo "ci: ERROR: no clang-tidy on PATH (tried CLANG_TIDY, clang-tidy-19/-18/-17, clang-tidy)." >&2
  echo "ci: install one, set CLANG_TIDY=/path/to/clang-tidy, or opt out explicitly with CI_ALLOW_MISSING_CLANG_TIDY=1" >&2
  exit 1
fi

obs_dir="$build_dir/obs_ci"
mkdir -p "$obs_dir"
# --scale keeps the sanitizer-instrumented run (and its trace) small; the
# schema checks are scale-independent.
"$build_dir/bench/bench_fig5_overhead" --scale=0.2 --churn-minutes=120 \
  --metrics-out="$obs_dir/metrics.json" \
  --trace-out="$obs_dir/trace.jsonl" \
  --trace-filter=bgp,beacon \
  --chrome-trace-out="$obs_dir/chrome_trace.json" \
  --bench-out="$obs_dir/BENCH_fig5_overhead.json" > "$obs_dir/stdout.txt"
"$build_dir/tools/obs_check" \
  --metrics="$obs_dir/metrics.json" \
  --trace="$obs_dir/trace.jsonl" --expect-cat=bgp,beacon \
  --chrome-trace="$obs_dir/chrome_trace.json" \
  --bench="$obs_dir/BENCH_fig5_overhead.json"

# Bench regression gate: diff the smoke report against the checked-in
# baseline (tools/bench_baseline/). Deterministic fields (figure scalars,
# counters, phase calls, per-label event counts) gate exactly; allocs gate
# with a +25% band; wall time only warns. The baseline is preset-independent
# — the deterministic fields are byte-identical across release/checked/
# asan-ubsan/tsan — so this runs under whichever preset was selected.
"$build_dir/tools/bench_diff" \
  --baseline=tools/bench_baseline/BENCH_fig5_overhead.json \
  --current="$obs_dir/BENCH_fig5_overhead.json" \
  --report-out="$obs_dir/bench_diff.txt"

# Fault-injection smoke: the dynamic-resilience bench under the example
# scenario (flaps, AS outage, ISD partition) with the fault category traced.
# The ctest run above already exercises the fault_smoke fixtures; this is
# the sanitizer-instrumented rerun with artifacts validated end to end.
fault_dir="$build_dir/fault_ci"
mkdir -p "$fault_dir"
"$build_dir/bench/bench_dyn_resilience" \
  --core-isds=3 --core-ases=12 --internet-ases=200 \
  --sampled-pairs=20 --churn-minutes=10 \
  --faults=examples/dyn_resilience.faults \
  --metrics-out="$fault_dir/metrics.json" \
  --trace-out="$fault_dir/trace.jsonl" \
  --trace-filter=fault \
  --bench-out="$fault_dir/bench.json" > "$fault_dir/stdout.txt"
"$build_dir/tools/obs_check" \
  --metrics="$fault_dir/metrics.json" \
  --trace="$fault_dir/trace.jsonl" --expect-cat=fault \
  --bench="$fault_dir/bench.json"

# Churn-survival smoke: the five-series churn-response bench (plain BGP,
# damping, graceful restart, SCION baseline, SCION robust) under the
# example sustained-churn scenario, validated and then diffed against the
# checked-in baseline so availability/amplification and the survival
# counters (suppressed, stale-retained, quarantined, re-originated) cannot
# drift silently. The 60-minute window is load-bearing: the example's burst
# storm and session restarts start at 15m+. --jobs=4 runs the five series
# on the TaskPool: under the tsan preset this race-gates the PR 8 survival
# bookkeeping, and the exact bench_diff below doubles as the proof that the
# parallel run's deterministic fields match the serial baseline.
churn_dir="$build_dir/churn_ci"
mkdir -p "$churn_dir"
"$build_dir/bench/bench_churn_response" \
  --core-isds=3 --core-ases=12 --internet-ases=200 \
  --sampled-pairs=18 --churn-minutes=60 --probe-interval-s=30 --jobs=4 \
  --faults=examples/churn.faults \
  --metrics-out="$churn_dir/metrics.json" \
  --trace-out="$churn_dir/trace.jsonl" \
  --trace-filter=fault \
  --bench-out="$churn_dir/BENCH_churn_response.json" > "$churn_dir/stdout.txt"
"$build_dir/tools/obs_check" \
  --metrics="$churn_dir/metrics.json" \
  --trace="$churn_dir/trace.jsonl" --expect-cat=fault \
  --bench="$churn_dir/BENCH_churn_response.json"
"$build_dir/tools/bench_diff" \
  --baseline=tools/bench_baseline/BENCH_churn_response.json \
  --current="$churn_dir/BENCH_churn_response.json" \
  --report-out="$churn_dir/bench_diff.txt"

# Parallel-execution smoke: a quality bench on the exec::TaskPool with
# --jobs=4. Under the tsan preset this is the data-race gate for the
# worker pool and the sharded telemetry merge; under the other presets it
# still proves the parallel path produces schema-valid artifacts.
par_dir="$build_dir/par_ci"
mkdir -p "$par_dir"
"$build_dir/bench/bench_fig6b_capacity" --scale=0.2 --pairs=40 \
  --jobs=4 \
  --metrics-out="$par_dir/metrics.json" \
  --trace-out="$par_dir/trace.jsonl" \
  --trace-filter=beacon,bgp \
  --bench-out="$par_dir/bench.json" > "$par_dir/stdout.txt"
"$build_dir/tools/obs_check" \
  --metrics="$par_dir/metrics.json" \
  --trace="$par_dir/trace.jsonl" --expect-cat=beacon,bgp \
  --bench="$par_dir/bench.json"

# Publish the profiling artifacts next to the lint ones: every smoke BENCH
# report, the Chrome trace (load it at chrome://tracing or ui.perfetto.dev),
# and the bench_diff verdict table.
cp "$obs_dir/BENCH_fig5_overhead.json" \
   "$obs_dir/chrome_trace.json" \
   "$obs_dir/bench_diff.txt" "$artifact_dir/"
cp "$fault_dir/bench.json" "$artifact_dir/BENCH_dyn_resilience_smoke.json"
cp "$churn_dir/BENCH_churn_response.json" "$artifact_dir/"
cp "$churn_dir/bench_diff.txt" "$artifact_dir/churn_bench_diff.txt"
cp "$par_dir/bench.json" "$artifact_dir/BENCH_fig6b_capacity_smoke.json"
echo "ci: artifacts: $artifact_dir/BENCH_fig5_overhead.json $artifact_dir/chrome_trace.json $artifact_dir/bench_diff.txt"

echo "ci: $preset build, tests, simlint (determinism + layering + hot-path cost + shared state), fault smoke, churn smoke + regression gate, parallel smoke, bench regression gate, and telemetry artifacts all green"
