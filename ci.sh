#!/bin/sh
# CI gate: configure and build the asan-ubsan preset (ASan + UBSan,
# SCION_MPR_CHECKED=ON, -Werror), run the full test suite under the
# sanitizers, and lint the simulator sources with simlint. Any sanitizer
# report, failed test, warning, or determinism hazard fails the script.
#
# Usage: ./ci.sh [preset]   (default: asan-ubsan; try `tsan` or `checked`)
set -eu

preset="${1:-asan-ubsan}"

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset"

case "$preset" in
  asan-ubsan) build_dir="build-asan" ;;
  tsan) build_dir="build-tsan" ;;
  checked) build_dir="build-checked" ;;
  *) build_dir="build" ;;
esac
"$build_dir/tools/simlint" src

echo "ci: $preset build, tests, and simlint all green"
