// simlint — determinism lint for the simulator sources.
//
// The paper's overhead and path-quality results (Figs. 5-9, Table 1) are
// produced by multi-hour simulations that must be bit-reproducible across
// runs and machines. This linter token-scans C++ sources for the hazards
// that silently break that property:
//
//   wall-clock      nondeterministic time sources (std::chrono clocks,
//                   time(), gettimeofday, clock_gettime). All simulation
//                   time must flow through util::TimePoint.
//   std-rng         <random> engines and std::rand/srand/random_device.
//                   All randomness must flow through the seeded util::Rng.
//   unordered-iter  iteration over std::unordered_map/unordered_set.
//                   Hash iteration order is implementation- and
//                   address-dependent; when it feeds serialized or scored
//                   output, two identical runs diverge. Lookups are fine —
//                   only iteration (range-for, .begin()/.end()) is flagged.
//   float-accum     floating-point accumulation inside an unordered
//                   iteration (float addition is not associative, so the
//                   sum depends on hash order), and std::accumulate with a
//                   floating-point init wherever it appears.
//   raw-output      direct stdout writes (std::cout, printf, puts,
//                   fprintf(stdout, ...)) in simulation code. Result output
//                   must flow through the obs renderer (obs::print /
//                   obs::Table) so it stays convertible to the JSON
//                   telemetry outputs; files under an obs/ directory are
//                   the renderer itself and are exempt. stderr diagnostics
//                   and snprintf string formatting are not flagged.
//   raw-thread      raw threading primitives (std::thread, std::jthread,
//                   std::async, pthread_create) outside the task pool.
//                   Ad-hoc threads bypass the per-task telemetry captures
//                   and substream seeding that keep parallel runs
//                   byte-identical; all parallelism must flow through
//                   exec::TaskPool / exec::parallel_map. Files whose stem
//                   contains "task_pool" are the pool itself and exempt.
//
// Provably order-insensitive iteration (pure counting, erase-only sweeps)
// is silenced in place with `// simlint:allow(<rule>)` on the offending
// line or the line above; the directive documents the proof obligation.
//
// Scoping: a declaration like `std::unordered_map<K, V> foo;` makes `foo`
// an unordered name. Members (trailing '_') are visible across the whole
// scanned corpus; other names are visible within their translation-unit
// group, i.e. files sharing a path stem (speaker.hpp + speaker.cpp), which
// covers struct members used from the companion source file.
#pragma once

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scion::lint {

struct Finding {
  std::string file;
  int line{0};
  std::string rule;
  std::string message;

  bool operator==(const Finding&) const = default;
};

inline const std::vector<std::string>& rule_names() {
  // layering / module-cycle are produced by the include-graph analyzer
  // (simlint_includes.hpp); the hot-* rules by the hot-path-cost analyzer
  // (simlint_hotpath.hpp, including the baseline-diff hot-cost-regression);
  // mutable-global / unguarded-shared / state-regression by the
  // shared-state analyzer (simlint_state.hpp); the rest by Linter::run().
  static const std::vector<std::string> kNames{
      "wall-clock",      "std-rng",        "unordered-iter",
      "float-accum",     "raw-output",     "raw-thread",
      "layering",        "module-cycle",   "hot-alloc",
      "hot-string",      "hot-copy-arg",   "hot-map-lookup",
      "hot-unlabeled-schedule",            "hot-cost-regression",
      "mutable-global",  "unguarded-shared",
      "state-regression"};
  return kNames;
}

class Linter {
 public:
  /// Registers a source file. Call for every file before run().
  void add_file(std::string name, std::string content) {
    files_.emplace_back(std::move(name), std::move(content));
  }

  /// Lints every registered file and returns the findings in file order.
  std::vector<Finding> run() const;

 private:
  std::vector<std::pair<std::string, std::string>> files_;
};

namespace detail {

inline std::vector<std::string> split_lines(std::string_view content) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(content.substr(start));
      break;
    }
    lines.emplace_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

/// Path stem ("src/bgp/speaker.cpp" -> "src/bgp/speaker") used to group a
/// header with its companion source file.
inline std::string stem_of(std::string_view path) {
  const std::size_t dot = path.rfind('.');
  const std::size_t slash = path.rfind('/');
  if (dot == std::string_view::npos ||
      (slash != std::string_view::npos && dot < slash)) {
    return std::string{path};
  }
  return std::string{path.substr(0, dot)};
}

/// The code part of a line: strips the trailing // comment (naive: the
/// sources use no "//" inside string literals on hazard-relevant lines).
inline std::string_view code_part(std::string_view line) {
  const std::size_t pos = line.find("//");
  return pos == std::string_view::npos ? line : line.substr(0, pos);
}

/// Rules allowed by a `simlint:allow(a,b)` directive on this line, if any.
inline std::vector<std::string> allowed_rules(std::string_view line) {
  std::vector<std::string> out;
  const std::size_t pos = line.find("simlint:allow(");
  if (pos == std::string_view::npos) return out;
  const std::size_t open = pos + std::string_view{"simlint:allow("}.size();
  const std::size_t close = line.find(')', open);
  if (close == std::string_view::npos) return out;
  std::string name;
  for (char c : line.substr(open, close - open)) {
    if (c == ',') {
      if (!name.empty()) out.push_back(std::move(name));
      name.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      name.push_back(c);
    }
  }
  if (!name.empty()) out.push_back(std::move(name));
  return out;
}

/// Identifiers declared as unordered containers anywhere in `content`.
/// Handles declarations whose template arguments span line breaks.
inline std::vector<std::string> unordered_names(const std::string& content) {
  static const std::regex kDecl{
      R"(unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*?>\s*(\w+)\s*[;={(])"};
  std::vector<std::string> names;
  for (std::sregex_iterator it{content.begin(), content.end(), kDecl}, end;
       it != end; ++it) {
    names.push_back((*it)[1].str());
  }
  return names;
}

/// Type-alias names bound to unordered containers
/// (`using Foo = std::unordered_map<...>`). Aliases hide the container from
/// the declaration scan above, so variables of alias type are resolved in a
/// second step.
inline std::vector<std::string> unordered_alias_names(
    const std::string& content) {
  static const std::regex kAlias{
      R"(using\s+(\w+)\s*=\s*std::unordered_(?:map|set|multimap|multiset)\b)"};
  std::vector<std::string> names;
  for (std::sregex_iterator it{content.begin(), content.end(), kAlias}, end;
       it != end; ++it) {
    names.push_back((*it)[1].str());
  }
  return names;
}

/// Variables declared with one of the given alias types.
inline std::vector<std::string> alias_typed_names(
    const std::string& content, const std::set<std::string>& aliases) {
  std::vector<std::string> names;
  if (aliases.empty()) return names;
  std::string alt;
  for (const std::string& a : aliases) {
    if (!alt.empty()) alt += '|';
    alt += a;
  }
  const std::regex kDecl{R"(\b(?:)" + alt + R"()\s+(\w+)\s*[;={(])"};
  for (std::sregex_iterator it{content.begin(), content.end(), kDecl}, end;
       it != end; ++it) {
    names.push_back((*it)[1].str());
  }
  return names;
}

/// Identifiers declared `double x` / `float x` in `content` (accumulator
/// candidates for the float-accum rule).
inline std::vector<std::string> float_names(const std::string& content) {
  static const std::regex kDecl{R"(\b(?:double|float)\s+(\w+)\s*[;={])"};
  std::vector<std::string> names;
  for (std::sregex_iterator it{content.begin(), content.end(), kDecl}, end;
       it != end; ++it) {
    names.push_back((*it)[1].str());
  }
  return names;
}

inline bool mentions_name(std::string_view expr,
                          const std::set<std::string>& names) {
  static const std::regex kIdent{R"(\w+)"};
  const std::string s{expr};
  for (std::sregex_iterator it{s.begin(), s.end(), kIdent}, end; it != end;
       ++it) {
    if (names.contains(it->str())) return true;
  }
  return false;
}

}  // namespace detail

inline std::vector<Finding> Linter::run() const {
  using namespace detail;

  static const std::regex kWallClock{
      R"(std::chrono::(?:system_clock|steady_clock|high_resolution_clock))"
      R"(|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\))"};
  static const std::regex kStdRng{
      R"(std::(?:rand\b|srand\b|mt19937(?:_64)?\b|minstd_rand0?\b|)"
      R"(default_random_engine\b|random_device\b|knuth_b\b|ranlux\d+\b)|\bsrand\s*\()"};
  static const std::regex kRangeFor{R"(for\s*\([^;()]*:\s*([^)]*))"};
  static const std::regex kAccumulateFloat{
      R"(std::accumulate\s*\([^;]*,\s*(?:0\.\d*f?|\d+\.\d*f?|(?:double|float)\s*[{(])\s*[,)])"};
  // \b keeps snprintf/fputs/fprintf(stderr) out: only bare printf/puts and
  // an explicit stdout stream count as terminal output.
  static const std::regex kRawOutput{
      R"(\bstd::cout\b|\bprintf\s*\(|\bputs\s*\(|\bfprintf\s*\(\s*stdout\b)"};
  // std::mutex / condition_variable / atomic are fine (synchronization, not
  // thread creation); only spawning primitives are flagged.
  static const std::regex kRawThread{
      R"(\bstd::(?:thread|jthread|async)\b|\bpthread_create\b)"};

  // Pass 1a: alias names are corpus-global (a `using` in one header types
  // members everywhere).
  std::set<std::string> aliases;
  for (const auto& [name, content] : files_) {
    for (std::string& id : [&] { return unordered_alias_names(content); }()) {
      aliases.insert(std::move(id));
    }
  }

  // Pass 1b: unordered / float accumulator names, per stem group and global
  // (members with a trailing underscore).
  std::set<std::string> global_unordered;
  std::set<std::pair<std::string, std::string>> local_unordered;  // stem, name
  std::set<std::pair<std::string, std::string>> local_floats;
  for (const auto& [name, content] : files_) {
    const std::string stem = stem_of(name);
    std::vector<std::string> ids = unordered_names(content);
    for (std::string& id : [&] { return alias_typed_names(content, aliases); }()) {
      ids.push_back(std::move(id));
    }
    for (std::string& id : ids) {
      if (!id.empty() && id.back() == '_') global_unordered.insert(id);
      local_unordered.emplace(stem, std::move(id));
    }
    for (std::string& id : [&] { return float_names(content); }()) {
      local_floats.emplace(stem, std::move(id));
    }
  }

  // Pass 2: per-line scanning.
  std::vector<Finding> findings;
  for (const auto& [name, content] : files_) {
    const std::string stem = stem_of(name);
    // The obs renderer owns the sanctioned stdout sites.
    const bool obs_exempt = name.find("/obs/") != std::string::npos ||
                            name.rfind("obs/", 0) == 0;
    // The task pool is the one sanctioned owner of worker threads.
    const bool pool_exempt = stem.find("task_pool") != std::string::npos;
    std::set<std::string> unordered = global_unordered;
    std::set<std::string> floats;
    for (const auto& [s, id] : local_unordered) {
      if (s == stem) unordered.insert(id);
    }
    for (const auto& [s, id] : local_floats) {
      if (s == stem) floats.insert(id);
    }

    const std::vector<std::string> lines = split_lines(content);
    std::vector<std::string> carried_allow;  // from the previous line
    // Brace-depth tracking for the body of the innermost flagged
    // unordered-container loop (float-accum context).
    int unordered_loop_depth = -1;
    int depth = 0;
    bool in_block_comment = false;

    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& raw = lines[i];
      std::vector<std::string> allow = allowed_rules(raw);
      const std::vector<std::string> effective_allow = [&] {
        std::vector<std::string> v = carried_allow;
        v.insert(v.end(), allow.begin(), allow.end());
        return v;
      }();
      carried_allow = std::move(allow);

      std::string_view code = code_part(raw);
      if (in_block_comment) {
        const std::size_t close = code.find("*/");
        if (close == std::string_view::npos) continue;
        code = code.substr(close + 2);
        in_block_comment = false;
      }
      // Strip every complete /* ... */ span; an unterminated opener puts
      // the scanner into block-comment mode for the following lines.
      std::string code_buf;
      while (true) {
        const std::size_t open = code.find("/*");
        if (open == std::string_view::npos) {
          code_buf.append(code);
          break;
        }
        code_buf.append(code.substr(0, open));
        const std::size_t close = code.find("*/", open + 2);
        if (close == std::string_view::npos) {
          in_block_comment = true;
          break;
        }
        code = code.substr(close + 2);
      }

      const auto allowed = [&](const std::string& rule) {
        return std::find(effective_allow.begin(), effective_allow.end(),
                         rule) != effective_allow.end();
      };
      const auto report = [&](const char* rule, std::string message) {
        if (allowed(rule)) return;
        findings.push_back(
            Finding{name, static_cast<int>(i + 1), rule, std::move(message)});
      };

      const std::string& code_str = code_buf;
      if (std::regex_search(code_str, kWallClock)) {
        report("wall-clock",
               "wall-clock time source; use util::TimePoint simulation time");
      }
      if (std::regex_search(code_str, kStdRng)) {
        report("std-rng",
               "unseeded/standard RNG; use util::Rng with an explicit seed");
      }
      if (std::regex_search(code_str, kAccumulateFloat)) {
        report("float-accum",
               "std::accumulate over floats needs a documented ordering");
      }
      if (!obs_exempt && std::regex_search(code_str, kRawOutput)) {
        report("raw-output",
               "direct stdout write; route results through the obs renderer "
               "(obs::print / obs::Table)");
      }
      if (!pool_exempt && std::regex_search(code_str, kRawThread)) {
        report("raw-thread",
               "raw thread primitive; route parallelism through "
               "exec::TaskPool / exec::parallel_map");
      }

      bool flagged_iteration = false;
      std::smatch m;
      if (std::regex_search(code_str, m, kRangeFor) &&
          mentions_name(m[1].str(), unordered)) {
        flagged_iteration = true;
        report("unordered-iter",
               "range-for over an unordered container; order is "
               "hash/address dependent");
      }
      // Iterator-style walks: only `.begin()` marks iteration — `.end()`
      // alone is the idiomatic "not found" comparison after a lookup.
      if (!flagged_iteration) {
        static const std::regex kBegin{R"((\w+)\.begin\s*\()"};
        for (std::sregex_iterator it{code_str.begin(), code_str.end(), kBegin},
             end;
             it != end; ++it) {
          if (unordered.contains((*it)[1].str())) {
            flagged_iteration = true;
            report("unordered-iter",
                   "iterator walk over an unordered container; order is "
                   "hash/address dependent");
            break;
          }
        }
      }

      // float-accum: += on a double/float accumulator inside the body of a
      // flagged unordered iteration.
      if (unordered_loop_depth >= 0 && code_str.find("+=") != std::string::npos) {
        static const std::regex kPlusEq{R"((\w+)\s*\+=)"};
        std::smatch am;
        if (std::regex_search(code_str, am, kPlusEq) &&
            (floats.contains(am[1].str()) ||
             code_str.find("static_cast<double>") != std::string::npos ||
             code_str.find("static_cast<float>") != std::string::npos)) {
          report("float-accum",
                 "floating-point accumulation in unordered iteration order");
        }
      }

      if (flagged_iteration) unordered_loop_depth = depth;
      for (char c : code_str) {
        if (c == '{') ++depth;
        if (c == '}') {
          --depth;
          if (unordered_loop_depth >= 0 && depth <= unordered_loop_depth) {
            unordered_loop_depth = -1;
          }
        }
      }
    }
  }
  return findings;
}

}  // namespace scion::lint
