// Core comparison logic for tools/bench_diff — header-only so
// tests/test_bench_diff.cpp can exercise it without spawning the binary.
//
// Compares two scion-mpr-bench-v1 documents (a baseline and a current run)
// and classifies every difference:
//   - deterministic fields (figure scalars, metrics counters, per-phase call
//     counts, per-label event counts) gate EXACTLY: any drift fails,
//   - allocation counters gate with a tolerance band: increases beyond
//     --alloc-tolerance fail, decreases always pass,
//   - wall-time fields only warn unless --wall-tolerance is given, because
//     wall time is machine-dependent and must never fail a deterministic
//     gate by default.
// Sections that only exist under SCION_MPR_OBS=ON (metrics, phases,
// event_profile) are skipped when either manifest says obs_enabled=false.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"

namespace scion::tools {

enum class DiffSeverity { kOk, kWarn, kFail };

inline const char* to_string(DiffSeverity s) {
  switch (s) {
    case DiffSeverity::kOk:
      return "ok";
    case DiffSeverity::kWarn:
      return "WARN";
    case DiffSeverity::kFail:
      return "FAIL";
  }
  return "?";
}

/// One reported difference (identical values are counted, not listed).
struct DiffEntry {
  DiffSeverity severity{DiffSeverity::kOk};
  std::string metric;    // dotted path, e.g. "scalars.beacons_sent"
  std::string baseline;  // rendered baseline value ("-" when absent)
  std::string current;   // rendered current value ("-" when absent)
  std::string note;      // human explanation of the verdict
};

struct DiffOptions {
  /// Allowed fractional increase for allocation counters (0.25 = +25%).
  double alloc_tolerance{0.25};
  /// Allowed fractional increase for wall-time fields; negative means wall
  /// regressions are warnings, never failures (the default).
  double wall_tolerance{-1.0};
};

/// Result of diffing one bench document pair.
struct DiffReport {
  std::string name;                // bench name (from the baseline doc)
  std::vector<DiffEntry> entries;  // warnings and failures only
  std::size_t compared{0};         // total comparisons performed
  std::size_t failures{0};
  std::size_t warnings{0};

  void add(DiffSeverity severity, std::string metric, std::string baseline,
           std::string current, std::string note) {
    if (severity == DiffSeverity::kFail) ++failures;
    if (severity == DiffSeverity::kWarn) ++warnings;
    if (severity != DiffSeverity::kOk) {
      entries.push_back(DiffEntry{severity, std::move(metric),
                                  std::move(baseline), std::move(current),
                                  std::move(note)});
    }
  }

  bool failed() const { return failures > 0; }
};

namespace diff_detail {

/// Renders a parsed JSON number without spurious ".000000" on integers.
inline std::string fmt_num(double v) {
  if (std::nearbyint(v) == v && std::abs(v) < 9.0e15) {
    return obs::fmt_i64(static_cast<std::int64_t>(v));
  }
  return obs::fmt_g(v, 6);
}

/// Exact gate: any numeric drift in a deterministic field is a failure.
inline void diff_exact(DiffReport& r, const std::string& metric, double base,
                       double cur) {
  ++r.compared;
  if (base == cur) return;
  r.add(DiffSeverity::kFail, metric, fmt_num(base), fmt_num(cur),
        "deterministic field changed");
}

/// Tolerance gate: `cur` may exceed `base` by at most `tolerance * base`
/// (absolute slack of `slack` covers near-zero baselines). Decreases pass.
/// With a negative tolerance the regression only warns.
inline void diff_band(DiffReport& r, const std::string& metric, double base,
                      double cur, double tolerance, double slack,
                      const char* what) {
  ++r.compared;
  if (cur <= base) return;
  const double allowed =
      tolerance < 0.0 ? -1.0 : base * (1.0 + tolerance) + slack;
  if (allowed >= 0.0 && cur <= allowed) return;
  const double pct = base > 0.0 ? (cur / base - 1.0) * 100.0 : 100.0;
  const std::string note = std::string{what} + " +" + obs::fmt_f(pct, 1) + "%";
  r.add(tolerance < 0.0 ? DiffSeverity::kWarn : DiffSeverity::kFail, metric,
        fmt_num(base), fmt_num(cur),
        tolerance < 0.0 ? note + " (wall time: warn only)" : note);
}

/// Diffs two JSON objects of numbers with the given per-key gate.
template <typename Gate>
void diff_number_map(DiffReport& r, const std::string& prefix,
                     const obs::JsonValue* base, const obs::JsonValue* cur,
                     Gate&& gate) {
  const bool have_base = base != nullptr && base->is_object();
  const bool have_cur = cur != nullptr && cur->is_object();
  if (have_base) {
    for (const auto& [key, bv] : base->as_object()) {
      if (!bv.is_number()) continue;
      const std::string metric = prefix + "." + key;
      const obs::JsonValue* cv = have_cur ? cur->find(key) : nullptr;
      if (cv == nullptr || !cv->is_number()) {
        ++r.compared;
        r.add(DiffSeverity::kFail, metric, fmt_num(bv.as_number()), "-",
              "missing from current run");
        continue;
      }
      gate(r, metric, bv.as_number(), cv->as_number());
    }
  }
  if (have_cur) {
    for (const auto& [key, cv] : cur->as_object()) {
      if (!cv.is_number()) continue;
      if (have_base && base->find(key) != nullptr) continue;
      ++r.compared;
      r.add(DiffSeverity::kWarn, prefix + "." + key, "-",
            fmt_num(cv.as_number()), "new metric (absent from baseline)");
    }
  }
}

/// Indexes an array of objects by a string member, e.g. phases by "phase".
inline void index_by(const obs::JsonValue* arr, const char* key,
                     std::vector<std::pair<std::string, const obs::JsonValue*>>*
                         out) {
  if (arr == nullptr || !arr->is_array()) return;
  for (const obs::JsonValue& e : arr->as_array()) {
    if (!e.is_object()) continue;
    const obs::JsonValue* name = e.find(key);
    if (name == nullptr || !name->is_string()) continue;
    out->emplace_back(name->as_string(), &e);
  }
}

inline const obs::JsonValue* lookup(
    const std::vector<std::pair<std::string, const obs::JsonValue*>>& index,
    const std::string& name) {
  for (const auto& [n, v] : index) {
    if (n == name) return v;
  }
  return nullptr;
}

inline double num_or(const obs::JsonValue* obj, const char* key,
                     double fallback) {
  if (obj == nullptr) return fallback;
  const obs::JsonValue* v = obj->find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

inline bool obs_enabled(const obs::JsonValue& doc) {
  const obs::JsonValue* manifest = doc.find("manifest");
  if (manifest == nullptr) return true;
  const obs::JsonValue* flag = manifest->find("obs_enabled");
  return flag == nullptr || !flag->is_bool() || flag->as_bool();
}

}  // namespace diff_detail

/// Diffs a baseline and a current bench document. Both must be parsed
/// scion-mpr-bench-v1 reports (obs_check validates shape; this assumes it).
inline DiffReport diff_bench_docs(const obs::JsonValue& baseline,
                                  const obs::JsonValue& current,
                                  const DiffOptions& opts = {}) {
  using namespace diff_detail;
  DiffReport r;
  const obs::JsonValue* name = baseline.find("name");
  if (name != nullptr && name->is_string()) r.name = name->as_string();

  const obs::JsonValue* cur_name = current.find("name");
  if (cur_name != nullptr && cur_name->is_string() && !r.name.empty() &&
      cur_name->as_string() != r.name) {
    r.add(DiffSeverity::kFail, "name", r.name, cur_name->as_string(),
          "comparing different benches");
    return r;
  }

  // Figure scalars: the headline deterministic results. Exact.
  diff_number_map(r, "scalars", baseline.find("scalars"),
                  current.find("scalars"),
                  [](DiffReport& rep, const std::string& m, double b,
                     double c) { diff_exact(rep, m, b, c); });

  // Obs-gated sections: counters, phases and the event profile only carry
  // data when the build/run had observability on.
  if (!obs_enabled(baseline) || !obs_enabled(current)) {
    r.add(DiffSeverity::kWarn, "metrics", "-", "-",
          "obs disabled in a manifest; skipping counters/phases/events");
    return r;
  }

  // Metrics counters are deterministic event tallies. Exact.
  const obs::JsonValue* base_metrics = baseline.find("metrics");
  const obs::JsonValue* cur_metrics = current.find("metrics");
  diff_number_map(
      r, "counters",
      base_metrics != nullptr ? base_metrics->find("counters") : nullptr,
      cur_metrics != nullptr ? cur_metrics->find("counters") : nullptr,
      [](DiffReport& rep, const std::string& m, double b, double c) {
        diff_exact(rep, m, b, c);
      });

  // Phases: call counts are deterministic; wall time is banded.
  std::vector<std::pair<std::string, const obs::JsonValue*>> base_phases;
  std::vector<std::pair<std::string, const obs::JsonValue*>> cur_phases;
  index_by(baseline.find("phases"), "phase", &base_phases);
  index_by(current.find("phases"), "phase", &cur_phases);
  for (const auto& [phase, bp] : base_phases) {
    const obs::JsonValue* cp = lookup(cur_phases, phase);
    if (cp == nullptr) {
      ++r.compared;
      r.add(DiffSeverity::kFail, "phases." + phase + ".calls",
            fmt_num(num_or(bp, "calls", 0.0)), "-",
            "phase missing from current run");
      continue;
    }
    diff_exact(r, "phases." + phase + ".calls", num_or(bp, "calls", 0.0),
               num_or(cp, "calls", 0.0));
    diff_band(r, "phases." + phase + ".allocs", num_or(bp, "allocs", 0.0),
              num_or(cp, "allocs", 0.0), opts.alloc_tolerance, 16.0,
              "alloc regression");
    diff_band(r, "phases." + phase + ".wall_ns", num_or(bp, "wall_ns", 0.0),
              num_or(cp, "wall_ns", 0.0), opts.wall_tolerance, 0.0,
              "wall regression");
  }

  // Event profile: per-label event counts are deterministic; allocs banded;
  // wall banded (warn-only by default).
  const obs::JsonValue* base_profile = baseline.find("event_profile");
  const obs::JsonValue* cur_profile = current.find("event_profile");
  if (base_profile != nullptr && cur_profile != nullptr) {
    diff_exact(r, "event_profile.total_events",
               num_or(base_profile, "total_events", 0.0),
               num_or(cur_profile, "total_events", 0.0));
    diff_exact(r, "event_profile.attributed_events",
               num_or(base_profile, "attributed_events", 0.0),
               num_or(cur_profile, "attributed_events", 0.0));
    std::vector<std::pair<std::string, const obs::JsonValue*>> base_labels;
    std::vector<std::pair<std::string, const obs::JsonValue*>> cur_labels;
    index_by(base_profile->find("labels"), "label", &base_labels);
    index_by(cur_profile->find("labels"), "label", &cur_labels);
    for (const auto& [label, bl] : base_labels) {
      const obs::JsonValue* cl = lookup(cur_labels, label);
      const std::string prefix = "events." + label;
      if (cl == nullptr) {
        ++r.compared;
        r.add(DiffSeverity::kFail, prefix + ".events",
              fmt_num(num_or(bl, "events", 0.0)), "-",
              "event label missing from current run");
        continue;
      }
      diff_exact(r, prefix + ".events", num_or(bl, "events", 0.0),
                 num_or(cl, "events", 0.0));
      diff_band(r, prefix + ".allocs", num_or(bl, "allocs", 0.0),
                num_or(cl, "allocs", 0.0), opts.alloc_tolerance, 16.0,
                "alloc regression");
      diff_band(r, prefix + ".wall_ns", num_or(bl, "wall_ns", 0.0),
                num_or(cl, "wall_ns", 0.0), opts.wall_tolerance, 0.0,
                "wall regression");
    }
    for (const auto& [label, cl] : cur_labels) {
      if (lookup(base_labels, label) != nullptr) continue;
      ++r.compared;
      r.add(DiffSeverity::kWarn, "events." + label, "-",
            fmt_num(num_or(cl, "events", 0.0)),
            "new event label (absent from baseline)");
    }
  }

  return r;
}

/// Renders one or more diff reports as a single table (pass/warn/fail rows).
inline obs::Table diff_report_table(const std::vector<DiffReport>& reports) {
  obs::Table t{"Bench regression report: current run vs baseline",
               {obs::Column{"Verdict", obs::Align::kLeft, 8},
                obs::Column{"Bench", obs::Align::kLeft, 16},
                obs::Column{"Metric", obs::Align::kLeft, 32},
                obs::Column{"Baseline", obs::Align::kRight, 12},
                obs::Column{"Current", obs::Align::kRight, 12},
                obs::Column{"Note", obs::Align::kLeft, 30}}};
  for (const DiffReport& r : reports) {
    for (const DiffEntry& e : r.entries) {
      t.row({to_string(e.severity), r.name, e.metric, e.baseline, e.current,
             e.note});
    }
    if (r.entries.empty()) {
      t.row({"ok", r.name, "(all " + obs::fmt_u64(r.compared) + " comparisons)",
             "-", "-", "no regressions"});
    }
  }
  return t;
}

}  // namespace scion::tools
