// simlint hot-path-cost analyzer.
//
// Inside regions annotated with the src/util/hot_path.hpp markers
// (SCION_HOT_FN on the line(s) before a function, or an explicit
// SCION_HOT_PATH_BEGIN/END pair), flags the constructs that dominate the
// beaconing/BGP inner loops at Fig. 5 scale (tens of millions of events):
//
//   hot-alloc       heap allocation: new / make_unique / make_shared,
//                   owning-container construction, and growth calls
//                   (push_back, emplace*, insert, try_emplace, resize,
//                   reserve). One allocation per PCB event is ~20M mallocs
//                   per Fig. 5 run.
//   hot-string      std::string construction or formatting (std::string
//                   values, to_string, stringstreams, std::format, .str()).
//                   string_view and snprintf-into-stack-buffer are fine.
//   hot-copy-arg    by-value passing / copy-construction / by-value
//                   any_cast of a large domain type, driven by the declared
//                   type-size table below (PCB, AS entry, path segment,
//                   stored PCB, sim message, BGP update, RIB route, event).
//   hot-map-lookup  per-event std::map / std::unordered_map lookups
//                   (find/at/count/contains/bounds or operator[]) on names
//                   declared as map containers — hash/tree lookups in a
//                   per-event path belong in precomputed dense arrays.
//   hot-unlabeled-schedule
//                   a schedule_at / schedule_after / schedule_periodic /
//                   send member call in a hot region whose argument list
//                   carries no event label (no case-insensitive "label"
//                   token). Unlabeled events land in the profiler's
//                   "(unlabeled)" bucket and defeat per-event cost
//                   attribution exactly where it matters most.
//
// Like every simlint rule, a finding is silenced with
// `// simlint:allow(<rule>)` on the offending line or the line above; the
// directive documents why the cost is acceptable. Allowed sites still count
// in the cost report (cost_report_json), so the checked-in baseline
// (tools/cost_baseline.json) fails CI when suppressed cost creeps up —
// the report is the budget, the lint is the gate.
//
// Scanning follows simlint_core.hpp conventions: token/regex per line,
// comments stripped, members (trailing '_') visible corpus-wide, other
// names visible within their path-stem group.
#pragma once

#include <algorithm>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tools/simlint_core.hpp"

namespace scion::lint {

/// Declared approximate value sizes (bytes) for the large domain types the
/// hot-copy-arg rule watches. Sizes are curated, not sizeof(): they count
/// the immediate object plus the owning handles copied with it (vectors /
/// shared_ptrs mean refcounts and potential deep copies on mutation).
struct HotType {
  std::string name;
  std::size_t bytes;
};

/// Copying anything >= this many bytes per event is a finding.
inline constexpr std::size_t kHotCopyBytesThreshold = 32;

inline const std::vector<HotType>& default_hot_types() {
  static const std::vector<HotType> kTypes{
      {"AsEntry", 128},      // hop MAC 16 + signature 64 + peers vector
      {"BgpUpdateMsg", 64},  // two prefix vectors + shared AS path
      {"Event", 72},         // time + seq + type-erased callback
      {"Message", 48},       // ids + payload handle
      {"PathSegment", 72},   // PcbRef + AS/link vectors
      {"Pcb", 48},           // timestamps + AS-entry vector (deep copy!)
      {"Route", 32},         // shared AsPath refcount + origin slot
      {"StoredPcb", 56},     // PcbRef + link vector + admission metadata
  };
  return kTypes;
}

class HotPathAnalyzer {
 public:
  void add_file(std::string name, std::string content) {
    files_.emplace_back(std::move(name), std::move(content));
  }

  /// Overrides the type-size table (tests).
  void set_hot_types(std::vector<HotType> types) {
    hot_types_ = std::move(types);
  }

  /// Scans every registered file; returns unsuppressed findings in file
  /// order and accumulates the per-file cost counts for cost_report_json().
  std::vector<Finding> check();

  /// Deterministic JSON cost artifact: per-file and total counts of every
  /// hot-region match, *including* simlint:allow-suppressed sites. Written
  /// by the driver's --cost-report=PATH; diffed against the checked-in
  /// baseline by --cost-baseline=PATH.
  std::string cost_report_json() const;

  /// Compares the accumulated counts against a baseline report (the JSON
  /// text produced by cost_report_json on an earlier tree). Any per-file
  /// per-rule count above the baseline (files absent from the baseline
  /// count as zero) is a "hot-cost-regression" finding naming the file,
  /// rule, and both counts. Run check() first.
  std::vector<Finding> diff_baseline(const std::string& baseline_json) const;

 private:
  std::vector<std::pair<std::string, std::string>> files_;
  std::vector<HotType> hot_types_ = default_hot_types();
  // file -> rule -> count of matches inside hot regions (allowed included).
  std::map<std::string, std::map<std::string, int>> counts_;
  // file -> number of source lines inside hot regions.
  std::map<std::string, int> hot_lines_;
};

namespace detail {

/// Names declared as std::map / std::unordered_map (and multimap variants)
/// in `content` — the receiver set for hot-map-lookup.
inline std::vector<std::string> map_names(const std::string& content) {
  static const std::regex kDecl{
      R"((?:unordered_)?(?:map|multimap)\s*<[^;{}()]*?>\s*(\w+)\s*[;={(])"};
  std::vector<std::string> names;
  for (std::sregex_iterator it{content.begin(), content.end(), kDecl}, end;
       it != end; ++it) {
    names.push_back((*it)[1].str());
  }
  return names;
}

/// True when the line's code starts with `marker` (ignoring leading
/// whitespace). Region markers are recognized only in statement position:
/// that keeps marker names inside string literals (the analyzer's own
/// sources, usage text, tests) and the `#define` lines in util/hot_path.hpp
/// from opening phantom regions.
inline bool starts_with_marker(std::string_view code, std::string_view marker) {
  std::size_t i = 0;
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  return code.substr(i).starts_with(marker);
}

/// Scans the balanced-paren argument list of a call whose '(' sits at
/// `first_line_code[col]`; continuation lines come from `lines` starting at
/// `line + 1` (line comments stripped). True when the argument text holds a
/// case-insensitive "label" token. The scan is bounded to 32 lines; an
/// unterminated list counts as labeled so the rule never false-positives on
/// code the scanner cannot follow.
inline bool call_args_have_label(const std::string& first_line_code,
                                 const std::vector<std::string>& lines,
                                 std::size_t line, std::size_t col) {
  int depth = 0;
  std::string args;
  for (std::size_t j = line; j < lines.size() && j < line + 32; ++j) {
    const std::string_view code =
        j == line ? std::string_view{first_line_code} : code_part(lines[j]);
    for (std::size_t k = j == line ? col : 0; k < code.size(); ++k) {
      const char c = code[k];
      if (c == '(') {
        ++depth;
        if (depth == 1) continue;  // the call's own open paren
      } else if (c == ')') {
        --depth;
        if (depth == 0) {
          return args.find("label") != std::string::npos;
        }
      }
      args.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    }
    args.push_back(' ');
  }
  return true;  // unterminated within the window: give the benefit of doubt
}

inline void json_escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace detail

inline std::vector<Finding> HotPathAnalyzer::check() {
  using namespace detail;

  static const std::regex kNew{R"(\bnew\b)"};
  static const std::regex kMake{R"(\bmake_(?:unique|shared)\s*<)"};
  static const std::regex kGrow{
      R"(\.\s*(?:push_back|emplace_back|emplace|insert|try_emplace|resize|reserve)\s*\()"};
  static const std::regex kContainerCtor{
      R"(\bstd::(?:vector|deque|list|forward_list|map|multimap|set|multiset|unordered_map|unordered_multimap|unordered_set|unordered_multiset)\s*<[^;&]*?>\s+\w+)"};
  static const std::regex kString{R"(\bstd::string(?!_view)\b(?!\s*[&*>,]))"};
  static const std::regex kFormat{
      R"(\bto_string\s*\(|\bstd::format\s*\(|\b[io]?stringstream\b|\.str\s*\(\s*\))"};
  static const std::regex kLookup{
      R"((\w+)\s*\.\s*(?:find|at|count|contains|lower_bound|upper_bound|equal_range)\s*\()"};
  static const std::regex kSubscript{R"((\w+)\s*\[)"};
  // Member-call form only: the unlabeled convenience overloads forward to
  // the labeled ones via unqualified calls, which must not match.
  static const std::regex kSchedule{
      R"((?:\.|->)\s*(?:schedule_at|schedule_after|schedule_periodic|send)\s*\()"};

  // By-value declarations / parameters / range-for bindings and by-value
  // any_casts of table types at or above the copy threshold.
  std::string alt;
  for (const HotType& t : hot_types_) {
    if (t.bytes < kHotCopyBytesThreshold) continue;
    if (!alt.empty()) alt += '|';
    alt += t.name;
  }
  std::map<std::string, std::size_t, std::less<>> size_of;
  for (const HotType& t : hot_types_) size_of.emplace(t.name, t.bytes);
  const std::regex kCopyDecl{R"(\b()" + alt + R"()\s+\w+\s*[,)=;{(:])"};
  const std::regex kCopyCast{R"(\bany_cast<\s*()" + alt + R"()\s*>)"};
  const bool have_types = !alt.empty();

  // Map receiver names: members (trailing '_') corpus-wide, the rest within
  // their stem group (matching simlint_core's scoping rules).
  std::set<std::string> global_maps;
  std::set<std::pair<std::string, std::string>> local_maps;  // stem, name
  for (const auto& [name, content] : files_) {
    const std::string stem = stem_of(name);
    for (std::string& id : [&] { return map_names(content); }()) {
      if (!id.empty() && id.back() == '_') global_maps.insert(id);
      local_maps.emplace(stem, std::move(id));
    }
  }

  std::vector<Finding> findings;
  counts_.clear();
  hot_lines_.clear();
  for (const auto& [name, content] : files_) {
    const std::string stem = stem_of(name);
    std::set<std::string> maps = global_maps;
    for (const auto& [s, id] : local_maps) {
      if (s == stem) maps.insert(id);
    }

    const std::vector<std::string> lines = split_lines(content);
    std::vector<std::string> carried_allow;
    bool in_block_comment = false;
    int depth = 0;
    // SCION_HOT_FN region: armed by the marker, the region spans from the
    // marker line (so signatures are scanned for by-value parameters) to
    // the closing brace of the function body.
    bool fn_armed = false;   // marker seen, opening brace not yet
    int fn_base_depth = -1;  // depth outside the hot function body
    int explicit_hot = 0;    // BEGIN/END nesting count

    for (std::size_t i = 0; i < lines.size(); ++i) {
      const std::string& raw = lines[i];
      std::vector<std::string> allow = allowed_rules(raw);
      const std::vector<std::string> effective_allow = [&] {
        std::vector<std::string> v = carried_allow;
        v.insert(v.end(), allow.begin(), allow.end());
        return v;
      }();
      carried_allow = std::move(allow);

      std::string_view code = code_part(raw);
      if (in_block_comment) {
        const std::size_t close = code.find("*/");
        if (close == std::string_view::npos) continue;
        code = code.substr(close + 2);
        in_block_comment = false;
      }
      std::string code_buf;
      while (true) {
        const std::size_t open = code.find("/*");
        if (open == std::string_view::npos) {
          code_buf.append(code);
          break;
        }
        code_buf.append(code.substr(0, open));
        const std::size_t close = code.find("*/", open + 2);
        if (close == std::string_view::npos) {
          in_block_comment = true;
          break;
        }
        code = code.substr(close + 2);
      }
      const std::string& code_str = code_buf;

      if (starts_with_marker(code_str, "SCION_HOT_FN")) {
        fn_armed = true;
        fn_base_depth = depth;
      }
      if (starts_with_marker(code_str, "SCION_HOT_PATH_BEGIN")) {
        ++explicit_hot;
      }

      const bool in_fn_region = fn_armed;
      const bool hot = in_fn_region || explicit_hot > 0;

      if (hot) {
        ++hot_lines_[name];
        const auto allowed = [&](const std::string& rule) {
          return std::find(effective_allow.begin(), effective_allow.end(),
                           rule) != effective_allow.end();
        };
        const auto report = [&](const char* rule, std::string message) {
          ++counts_[name][rule];
          if (allowed(rule)) return;
          findings.push_back(
              Finding{name, static_cast<int>(i + 1), rule, std::move(message)});
        };

        if (std::regex_search(code_str, kNew) ||
            std::regex_search(code_str, kMake)) {
          report("hot-alloc",
                 "heap allocation in a hot-path region; hoist to setup or "
                 "reuse a scratch buffer");
        } else if (std::regex_search(code_str, kGrow)) {
          report("hot-alloc",
                 "container growth in a hot-path region; preallocate outside "
                 "the per-event path");
        } else if (std::regex_search(code_str, kContainerCtor)) {
          report("hot-alloc",
                 "owning container constructed in a hot-path region; hoist "
                 "the buffer out of the per-event path");
        }

        if (std::regex_search(code_str, kString) ||
            std::regex_search(code_str, kFormat)) {
          report("hot-string",
                 "std::string creation/formatting in a hot-path region; use "
                 "string_view, interned ids, or lazy trace fields");
        }

        if (have_types) {
          std::smatch m;
          if (std::regex_search(code_str, m, kCopyCast)) {
            report("hot-copy-arg",
                   "by-value any_cast of " + m[1].str() + " (~" +
                       std::to_string(size_of.find(m[1].str())->second) +
                       " bytes); cast to a const reference");
          } else if (std::regex_search(code_str, m, kCopyDecl)) {
            report("hot-copy-arg",
                   m[1].str() + " (~" +
                       std::to_string(size_of.find(m[1].str())->second) +
                       " bytes) passed/constructed by value in a hot-path "
                       "region; take a const reference or move");
          }
        }

        bool lookup_hit = false;
        for (std::sregex_iterator it{code_str.begin(), code_str.end(),
                                     kLookup},
             end;
             it != end && !lookup_hit; ++it) {
          lookup_hit = maps.contains((*it)[1].str());
        }
        for (std::sregex_iterator it{code_str.begin(), code_str.end(),
                                     kSubscript},
             end;
             it != end && !lookup_hit; ++it) {
          lookup_hit = maps.contains((*it)[1].str());
        }
        if (lookup_hit) {
          report("hot-map-lookup",
                 "map lookup in a hot-path region; index a precomputed "
                 "dense array instead");
        }

        for (std::sregex_iterator it{code_str.begin(), code_str.end(),
                                     kSchedule},
             end;
             it != end; ++it) {
          const std::size_t open =
              static_cast<std::size_t>(it->position(0)) +
              static_cast<std::size_t>(it->length(0)) - 1;
          if (!call_args_have_label(code_str, lines, i, open)) {
            report("hot-unlabeled-schedule",
                   "event scheduled/sent in a hot-path region without an "
                   "event label; pass an obs::EventLabel so profiler cost "
                   "attribution covers this path");
          }
        }
      }

      for (char c : code_str) {
        if (c == '{') {
          ++depth;
        } else if (c == '}') {
          --depth;
          if (fn_armed && fn_base_depth >= 0 && depth <= fn_base_depth) {
            // Closing brace of the hot function body.
            fn_armed = false;
            fn_base_depth = -1;
          }
        }
      }
      if (starts_with_marker(code_str, "SCION_HOT_PATH_END") &&
          explicit_hot > 0) {
        --explicit_hot;
      }
    }
  }
  return findings;
}

inline std::string HotPathAnalyzer::cost_report_json() const {
  static const std::vector<std::string> kRules{
      "hot-alloc", "hot-copy-arg", "hot-map-lookup", "hot-string",
      "hot-unlabeled-schedule"};
  std::map<std::string, int> totals;
  int total_hot_lines = 0;
  std::set<std::string> file_set;
  for (const auto& [file, n] : hot_lines_) {
    file_set.insert(file);
    total_hot_lines += n;
  }
  for (const auto& [file, rules] : counts_) {
    file_set.insert(file);
    for (const auto& [rule, n] : rules) totals[rule] += n;
  }

  std::string out;
  out += "{\n  \"version\": 1,\n  \"files\": [\n";
  bool first_file = true;
  for (const std::string& file : file_set) {
    if (!first_file) out += ",\n";
    first_file = false;
    out += "    {\"file\": \"";
    detail::json_escape_into(out, file);
    out += "\", \"hot_lines\": ";
    const auto hl = hot_lines_.find(file);
    out += std::to_string(hl == hot_lines_.end() ? 0 : hl->second);
    out += ", \"counts\": {";
    bool first_rule = true;
    const auto fc = counts_.find(file);
    for (const std::string& rule : kRules) {
      int n = 0;
      if (fc != counts_.end()) {
        const auto it = fc->second.find(rule);
        if (it != fc->second.end()) n = it->second;
      }
      if (!first_rule) out += ", ";
      first_rule = false;
      out += "\"" + rule + "\": " + std::to_string(n);
    }
    out += "}}";
  }
  out += "\n  ],\n  \"totals\": {";
  bool first_rule = true;
  for (const std::string& rule : kRules) {
    if (!first_rule) out += ", ";
    first_rule = false;
    const auto it = totals.find(rule);
    out += "\"" + rule + "\": " +
           std::to_string(it == totals.end() ? 0 : it->second);
  }
  if (!first_rule) out += ", ";
  out += "\"hot_lines\": " + std::to_string(total_hot_lines);
  out += "}\n}\n";
  return out;
}

inline std::vector<Finding> HotPathAnalyzer::diff_baseline(
    const std::string& baseline_json) const {
  // The baseline is a prior cost_report_json(): a fixed shape we emitted
  // ourselves, so a targeted scan (not a general JSON parser) is reliable.
  static const std::regex kFileEntry{
      R"re("file":\s*"((?:[^"\\]|\\.)*)"[^{}]*"counts":\s*\{([^}]*)\})re"};
  static const std::regex kRuleCount{R"re("([a-z-]+)":\s*(\d+))re"};

  std::map<std::string, std::map<std::string, int>> base;
  for (std::sregex_iterator it{baseline_json.begin(), baseline_json.end(),
                               kFileEntry},
       end;
       it != end; ++it) {
    std::string file = (*it)[1].str();
    // Un-escape the two characters json_escape_into escapes.
    std::string unescaped;
    for (std::size_t i = 0; i < file.size(); ++i) {
      if (file[i] == '\\' && i + 1 < file.size()) ++i;
      unescaped.push_back(file[i]);
    }
    const std::string counts = (*it)[2].str();
    for (std::sregex_iterator rt{counts.begin(), counts.end(), kRuleCount},
         rend;
         rt != rend; ++rt) {
      base[unescaped][(*rt)[1].str()] = std::stoi((*rt)[2].str());
    }
  }

  std::vector<Finding> findings;
  for (const auto& [file, rules] : counts_) {
    const auto bit = base.find(file);
    for (const auto& [rule, n] : rules) {
      int baseline = 0;
      if (bit != base.end()) {
        const auto rit = bit->second.find(rule);
        if (rit != bit->second.end()) baseline = rit->second;
      }
      if (n > baseline) {
        findings.push_back(Finding{
            file, 0, "hot-cost-regression",
            "hot-path cost regression: " + rule + " count " +
                std::to_string(n) + " exceeds baseline " +
                std::to_string(baseline) +
                " (tools/cost_baseline.json); remove the new cost or "
                "update the baseline deliberately"});
      }
    }
  }
  return findings;
}

}  // namespace scion::lint
