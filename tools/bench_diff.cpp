// bench_diff: regression gate over BENCH_*.json reports.
//
// Compares a current bench report (or a directory of them) against a
// baseline and classifies every drift (tools/bench_diff_core.hpp):
// deterministic fields gate exactly, allocation counters gate with a
// tolerance band, wall time warns unless --wall-tolerance is set. CI runs
// this after the smoke bench against the checked-in baseline so a metric
// that silently changes — event counts, figure scalars, allocation cost —
// fails the build with the offending metric named.
//
// Usage:
//   bench_diff --baseline=<file-or-dir> --current=<file-or-dir>
//              [--alloc-tolerance=0.25] [--wall-tolerance=<frac>]
//              [--report-out=<file>]
//
// In directory mode every BENCH_*.json in the baseline directory must have
// a same-named counterpart in the current directory; extra current reports
// only warn (new benches are not regressions).
//
// Exit codes: 0 no regressions, 1 regression detected, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_diff_core.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/flags.hpp"

namespace {

using scion::obs::JsonValue;
using scion::tools::DiffOptions;
using scion::tools::DiffReport;
using scion::tools::DiffSeverity;

std::optional<JsonValue> load_doc(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto doc = scion::obs::parse_json(buf.str(), &error);
  if (!doc) {
    std::fprintf(stderr, "bench_diff: %s: parse error: %s\n", path.c_str(),
                 error.c_str());
    return std::nullopt;
  }
  return doc;
}

/// Sorted BENCH_*.json file names directly inside `dir`.
std::vector<std::string> bench_files(const std::filesystem::path& dir) {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator{dir}) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 &&
        name.size() > 5 + 5 &&  // "BENCH_" + ".json"
        name.compare(name.size() - 5, 5, ".json") == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

/// Diffs one baseline/current file pair; nullopt on I/O or parse error.
std::optional<DiffReport> diff_files(const std::string& baseline,
                                     const std::string& current,
                                     const DiffOptions& opts) {
  const auto base_doc = load_doc(baseline);
  const auto cur_doc = load_doc(current);
  if (!base_doc || !cur_doc) return std::nullopt;
  DiffReport r = scion::tools::diff_bench_docs(*base_doc, *cur_doc, opts);
  if (r.name.empty()) {
    r.name = std::filesystem::path{baseline}.filename().string();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const scion::util::Flags flags{argc, argv};
  const std::string baseline = flags.get("baseline", "");
  const std::string current = flags.get("current", "");
  if (baseline.empty() || current.empty()) {
    std::fprintf(
        stderr,
        "usage: bench_diff --baseline=<file-or-dir> --current=<file-or-dir>\n"
        "                  [--alloc-tolerance=0.25] [--wall-tolerance=<frac>]\n"
        "                  [--report-out=<file>]\n");
    return 2;
  }

  DiffOptions opts;
  opts.alloc_tolerance = flags.get_double("alloc-tolerance", 0.25);
  opts.wall_tolerance = flags.get_double("wall-tolerance", -1.0);

  std::vector<DiffReport> reports;
  bool io_error = false;

  if (std::filesystem::is_directory(baseline)) {
    if (!std::filesystem::is_directory(current)) {
      std::fprintf(stderr,
                   "bench_diff: --baseline is a directory but --current is "
                   "not\n");
      return 2;
    }
    const std::vector<std::string> base_names = bench_files(baseline);
    if (base_names.empty()) {
      std::fprintf(stderr, "bench_diff: no BENCH_*.json in %s\n",
                   baseline.c_str());
      return 2;
    }
    for (const std::string& name : base_names) {
      const std::string cur_path =
          (std::filesystem::path{current} / name).string();
      if (!std::filesystem::exists(cur_path)) {
        DiffReport missing;
        missing.name = name;
        missing.add(DiffSeverity::kFail, "report", name, "-",
                    "bench report missing from current directory");
        reports.push_back(std::move(missing));
        continue;
      }
      auto r = diff_files((std::filesystem::path{baseline} / name).string(),
                          cur_path, opts);
      if (!r) {
        io_error = true;
        continue;
      }
      reports.push_back(std::move(*r));
    }
    for (const std::string& name : bench_files(current)) {
      if (std::filesystem::exists(std::filesystem::path{baseline} / name)) {
        continue;
      }
      DiffReport extra;
      extra.name = name;
      extra.add(DiffSeverity::kWarn, "report", "-", name,
                "new bench report (absent from baseline)");
      reports.push_back(std::move(extra));
    }
  } else {
    auto r = diff_files(baseline, current, opts);
    if (!r) return 2;
    reports.push_back(std::move(*r));
  }
  if (io_error) return 2;

  const scion::obs::Table table = scion::tools::diff_report_table(reports);
  const std::string text = table.to_text();
  scion::obs::print(text);

  const std::string report_out = flags.get("report-out", "");
  if (!report_out.empty()) {
    std::ofstream out{report_out};
    if (!out) {
      std::fprintf(stderr, "bench_diff: cannot open --report-out file %s\n",
                   report_out.c_str());
      return 2;
    }
    out << text;
  }

  std::size_t failures = 0;
  for (const DiffReport& r : reports) failures += r.failures;
  if (failures > 0) {
    std::fprintf(stderr, "bench_diff: %zu regression(s) vs baseline\n",
                 failures);
    return 1;
  }
  return 0;
}
