// obs_check: schema validator for the telemetry artifacts the simulator
// emits — metrics documents (--metrics-out), structured trace streams
// (--trace-out), and bench reports (--bench-out). CI runs a smoke bench
// with all three flags and then this checker over the outputs, so a broken
// writer (missing manifest key, malformed JSONL line, wrong schema tag)
// fails the build instead of silently producing unparseable artifacts.
//
// Usage:
//   obs_check [--metrics <file>] [--bench <file>]
//             [--trace <file>] [--expect-cat <csv>]
//             [--chrome-trace <file>]
//
// --chrome-trace validates a Chrome-trace export (--chrome-trace-out):
// traceEvents array shape, known phase types, required timing fields.
//
// --expect-cat restricts a trace stream: every event's "cat" must be one of
// the comma-separated names and at least one event must be present (this is
// how the --trace-filter plumbing is validated end to end).
//
// Exit codes: 0 all artifacts valid, 1 validation failure, 2 usage or I/O
// error.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/flags.hpp"

namespace {

using scion::obs::JsonValue;

// Failure tally for this single-threaded checker binary.
// simlint:allow(mutable-global)
int g_failures = 0;

void fail(const std::string& artifact, const std::string& message) {
  std::fprintf(stderr, "obs_check: %s: %s\n", artifact.c_str(),
               message.c_str());
  ++g_failures;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = std::move(buf).str();
  return true;
}

/// `obj.key` must exist with the given shape; reports and returns nullptr
/// otherwise.
const JsonValue* require(const JsonValue& obj, const std::string& artifact,
                         const std::string& key,
                         bool (JsonValue::*shape)() const,
                         const char* shape_name) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    fail(artifact, "missing key \"" + key + "\"");
    return nullptr;
  }
  if (!(v->*shape)()) {
    fail(artifact, "key \"" + key + "\" is not " + shape_name);
    return nullptr;
  }
  return v;
}

void check_manifest(const JsonValue& doc, const std::string& artifact) {
  const JsonValue* manifest =
      require(doc, artifact, "manifest", &JsonValue::is_object, "an object");
  if (manifest == nullptr) return;
  require(*manifest, artifact, "binary", &JsonValue::is_string, "a string");
  require(*manifest, artifact, "seed", &JsonValue::is_number, "a number");
  require(*manifest, artifact, "flags", &JsonValue::is_object, "an object");
  require(*manifest, artifact, "build_type", &JsonValue::is_string,
          "a string");
  require(*manifest, artifact, "git_sha", &JsonValue::is_string, "a string");
  require(*manifest, artifact, "sanitizers", &JsonValue::is_string,
          "a string");
  require(*manifest, artifact, "checked", &JsonValue::is_bool, "a bool");
  require(*manifest, artifact, "obs_enabled", &JsonValue::is_bool, "a bool");
}

void check_metrics_block(const JsonValue& doc, const std::string& artifact) {
  const JsonValue* metrics =
      require(doc, artifact, "metrics", &JsonValue::is_object, "an object");
  if (metrics != nullptr) {
    require(*metrics, artifact, "counters", &JsonValue::is_object,
            "an object");
    require(*metrics, artifact, "gauges", &JsonValue::is_object, "an object");
    require(*metrics, artifact, "histograms", &JsonValue::is_object,
            "an object");
  }
  const JsonValue* phases =
      require(doc, artifact, "phases", &JsonValue::is_array, "an array");
  if (phases != nullptr) {
    for (const JsonValue& p : phases->as_array()) {
      if (!p.is_object()) {
        fail(artifact, "phase entry is not an object");
        continue;
      }
      require(p, artifact, "phase", &JsonValue::is_string, "a string");
      require(p, artifact, "calls", &JsonValue::is_number, "a number");
      require(p, artifact, "wall_ns", &JsonValue::is_number, "a number");
      require(p, artifact, "wall_s", &JsonValue::is_number, "a number");
    }
  }
}

void check_event_profile(const JsonValue& doc, const std::string& artifact) {
  const JsonValue* profile = require(doc, artifact, "event_profile",
                                     &JsonValue::is_object, "an object");
  if (profile == nullptr) return;
  require(*profile, artifact, "enabled", &JsonValue::is_bool, "a bool");
  require(*profile, artifact, "total_events", &JsonValue::is_number,
          "a number");
  require(*profile, artifact, "attributed_events", &JsonValue::is_number,
          "a number");
  const JsonValue* samples = require(*profile, artifact, "queue_samples",
                                     &JsonValue::is_array, "an array");
  if (samples != nullptr) {
    for (const JsonValue& s : samples->as_array()) {
      if (!s.is_object()) {
        fail(artifact, "queue sample is not an object");
        continue;
      }
      require(s, artifact, "t_ns", &JsonValue::is_number, "a number");
      require(s, artifact, "depth", &JsonValue::is_number, "a number");
    }
  }
  const JsonValue* labels =
      require(*profile, artifact, "labels", &JsonValue::is_array, "an array");
  if (labels != nullptr) {
    std::string prev;
    for (const JsonValue& l : labels->as_array()) {
      if (!l.is_object()) {
        fail(artifact, "label entry is not an object");
        continue;
      }
      const JsonValue* name =
          require(l, artifact, "label", &JsonValue::is_string, "a string");
      require(l, artifact, "events", &JsonValue::is_number, "a number");
      require(l, artifact, "allocs", &JsonValue::is_number, "a number");
      require(l, artifact, "alloc_bytes", &JsonValue::is_number, "a number");
      require(l, artifact, "wall_ns", &JsonValue::is_number, "a number");
      require(l, artifact, "wall_s", &JsonValue::is_number, "a number");
      if (name != nullptr) {
        // Sorted label order is part of the determinism contract.
        if (!prev.empty() && !(prev < name->as_string())) {
          fail(artifact, "label \"" + name->as_string() +
                             "\" out of sorted order (after \"" + prev + "\")");
        }
        prev = name->as_string();
      }
    }
  }
}

/// Chrome-trace document: {"traceEvents": [...], "displayTimeUnit": "ms"};
/// every entry needs name/ph/pid, and "X"/"C" entries need a numeric ts.
void check_chrome_trace(const std::string& path) {
  const std::string artifact = "chrome-trace " + path;
  std::string text;
  if (!read_file(path, &text)) {
    fail(artifact, "cannot read file");
    return;
  }
  std::string error;
  const auto doc = scion::obs::parse_json(text, &error);
  if (!doc) {
    fail(artifact, "parse error: " + error);
    return;
  }
  require(*doc, artifact, "displayTimeUnit", &JsonValue::is_string,
          "a string");
  const JsonValue* events = require(*doc, artifact, "traceEvents",
                                    &JsonValue::is_array, "an array");
  if (events == nullptr) return;
  std::size_t index = 0;
  for (const JsonValue& e : events->as_array()) {
    const std::string where = artifact + " event #" + std::to_string(index++);
    if (!e.is_object()) {
      fail(where, "trace event is not an object");
      continue;
    }
    require(e, where, "name", &JsonValue::is_string, "a string");
    const JsonValue* ph =
        require(e, where, "ph", &JsonValue::is_string, "a string");
    require(e, where, "pid", &JsonValue::is_number, "a number");
    if (ph == nullptr) continue;
    const std::string& kind = ph->as_string();
    if (kind != "X" && kind != "C" && kind != "M") {
      fail(where, "unexpected phase type \"" + kind + "\"");
      continue;
    }
    if (kind == "X" || kind == "C") {
      require(e, where, "ts", &JsonValue::is_number, "a number");
    }
    if (kind == "X") {
      require(e, where, "dur", &JsonValue::is_number, "a number");
    }
  }
}

void check_schema_tag(const JsonValue& doc, const std::string& artifact,
                      const std::string& expected) {
  const JsonValue* schema =
      require(doc, artifact, "schema", &JsonValue::is_string, "a string");
  if (schema != nullptr && schema->as_string() != expected) {
    fail(artifact, "schema is \"" + schema->as_string() + "\", expected \"" +
                       expected + "\"");
  }
}

void check_metrics_doc(const std::string& path) {
  const std::string artifact = "metrics " + path;
  std::string text;
  if (!read_file(path, &text)) {
    fail(artifact, "cannot read file");
    return;
  }
  std::string error;
  const auto doc = scion::obs::parse_json(text, &error);
  if (!doc) {
    fail(artifact, "parse error: " + error);
    return;
  }
  check_schema_tag(*doc, artifact, "scion-mpr-metrics-v1");
  check_manifest(*doc, artifact);
  check_metrics_block(*doc, artifact);
  check_event_profile(*doc, artifact);
}

void check_bench_doc(const std::string& path) {
  const std::string artifact = "bench " + path;
  std::string text;
  if (!read_file(path, &text)) {
    fail(artifact, "cannot read file");
    return;
  }
  std::string error;
  const auto doc = scion::obs::parse_json(text, &error);
  if (!doc) {
    fail(artifact, "parse error: " + error);
    return;
  }
  check_schema_tag(*doc, artifact, "scion-mpr-bench-v1");
  require(*doc, artifact, "name", &JsonValue::is_string, "a string");
  check_manifest(*doc, artifact);
  check_metrics_block(*doc, artifact);
  check_event_profile(*doc, artifact);
  const JsonValue* scalars =
      require(*doc, artifact, "scalars", &JsonValue::is_object, "an object");
  if (scalars != nullptr) {
    for (const auto& [name, v] : scalars->as_object()) {
      if (!v.is_number()) fail(artifact, "scalar \"" + name + "\" not numeric");
    }
  }
  require(*doc, artifact, "series", &JsonValue::is_object, "an object");
  require(*doc, artifact, "tables", &JsonValue::is_array, "an array");
}

void check_trace_stream(const std::string& path,
                        const std::string& expect_cats_csv) {
  const std::string artifact = "trace " + path;
  std::string text;
  if (!read_file(path, &text)) {
    fail(artifact, "cannot read file");
    return;
  }

  std::set<std::string> allowed;
  std::istringstream cats{expect_cats_csv};
  for (std::string cat; std::getline(cats, cat, ',');) {
    if (!cat.empty()) allowed.insert(cat);
  }

  std::size_t events = 0;
  std::size_t line_no = 0;
  std::istringstream lines{text};
  for (std::string line; std::getline(lines, line);) {
    ++line_no;
    if (line.empty()) continue;
    const std::string where = artifact + ":" + std::to_string(line_no);
    std::string error;
    const auto event = scion::obs::parse_json(line, &error);
    if (!event) {
      fail(where, "parse error: " + error);
      continue;
    }
    if (!event->is_object()) {
      fail(where, "event is not an object");
      continue;
    }
    ++events;
    require(*event, where, "t", &JsonValue::is_number, "a number");
    const JsonValue* cat =
        require(*event, where, "cat", &JsonValue::is_string, "a string");
    require(*event, where, "ev", &JsonValue::is_string, "a string");
    if (cat != nullptr && !allowed.empty() &&
        allowed.find(cat->as_string()) == allowed.end()) {
      fail(where, "category \"" + cat->as_string() +
                      "\" outside the expected filter set");
    }
  }
  if (!allowed.empty() && events == 0) {
    fail(artifact, "no events, but --expect-cat requires at least one");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const scion::util::Flags flags{argc, argv};
  const std::string metrics = flags.get("metrics", "");
  const std::string bench = flags.get("bench", "");
  const std::string trace = flags.get("trace", "");
  const std::string chrome_trace = flags.get("chrome-trace", "");
  const std::string expect_cat = flags.get("expect-cat", "");

  if (metrics.empty() && bench.empty() && trace.empty() &&
      chrome_trace.empty()) {
    std::fprintf(stderr,
                 "usage: obs_check [--metrics <file>] [--bench <file>]\n"
                 "                 [--trace <file>] [--expect-cat <csv>]\n"
                 "                 [--chrome-trace <file>]\n");
    return 2;
  }

  if (!metrics.empty()) check_metrics_doc(metrics);
  if (!bench.empty()) check_bench_doc(bench);
  if (!trace.empty()) check_trace_stream(trace, expect_cat);
  if (!chrome_trace.empty()) check_chrome_trace(chrome_trace);

  if (g_failures > 0) {
    std::fprintf(stderr, "obs_check: %d failure(s)\n", g_failures);
    return 1;
  }
  // The validator's verdict is its product, not simulation output.
  std::printf("obs_check: all artifacts valid\n");  // simlint:allow(raw-output)
  return 0;
}
