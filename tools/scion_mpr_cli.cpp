// scion-mpr — command-line front end to the library.
//
//   scion-mpr gen      --kind=internet|core|isd|scionlab|multi-isd [--out=FILE]
//   scion-mpr beacon   --topology=FILE [--algorithm=baseline|diversity]
//                      [--hours=N] [--warmup-hours=N] [--faults=FILE]
//   scion-mpr quality  --topology=FILE [--pairs=N] [--hours=N]
//   scion-mpr table1   [--isds=N] [--isd-size=N] [--minutes=N]
//
// Topologies are the plain-text format of topology/io.hpp, so generated
// networks can be inspected, edited, and replayed.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "analysis/path_quality.hpp"
#include "core/beaconing_sim.hpp"
#include "exec/task_pool.hpp"
#include "faults/fault_plan.hpp"
#include "experiments/scale.hpp"
#include "experiments/table1_experiment.hpp"
#include "obs/session.hpp"
#include "topology/io.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

using namespace scion;

namespace {

int usage() {
  std::cerr <<
      "usage: scion-mpr <gen|beacon|quality|table1> [--key=value ...]\n"
      "  gen      --kind=internet|core|isd|scionlab|multi-isd [--ases=N]\n"
      "           [--seed=N] [--out=FILE]\n"
      "  beacon   --topology=FILE [--algorithm=baseline|diversity]\n"
      "           [--hours=N] [--warmup-hours=N] [--storage=N] [--limit=N]\n"
      "           [--faults=FILE]  fault scenario (see src/faults/fault_plan.hpp)\n"
      "  quality  --topology=FILE [--pairs=N] [--hours=N]\n"
      "  table1   [--isds=N] [--isd-size=N] [--minutes=N]\n"
      "execution (any command):\n"
      "  --jobs=N             worker threads for parallel experiment stages\n"
      "                       (default 1; results are identical for any N)\n"
      "telemetry (any command):\n"
      "  --metrics-out=FILE   write metrics + run manifest as JSON\n"
      "  --trace-out=FILE     stream structured events as JSONL\n"
      "  --trace-filter=CSV   categories to trace (default all:\n"
      "                       simnet,beacon,bgp,scion,sig,experiment,fault)\n";
  return 2;
}

topo::Topology load_topology(const util::Flags& flags) {
  const std::string path = flags.get("topology", "");
  if (path.empty()) throw std::runtime_error("--topology=FILE is required");
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open " + path);
  return topo::read_topology(in);
}

int cmd_gen(const util::Flags& flags) {
  const std::string kind = flags.get("kind", "multi-isd");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  topo::Topology topology;
  if (kind == "internet") {
    topo::HierarchyConfig config;
    config.n_ases = static_cast<std::size_t>(flags.get_int("ases", 800));
    config.seed = seed;
    topology = topo::generate_hierarchy(config);
  } else if (kind == "core") {
    topo::HierarchyConfig config;
    config.n_ases = static_cast<std::size_t>(flags.get_int("ases", 800));
    config.seed = seed;
    topology = topo::with_all_core_links(topo::make_core_network(
        topo::generate_hierarchy(config),
        static_cast<std::size_t>(flags.get_int("cores", 64)),
        static_cast<std::size_t>(flags.get_int("isds", 8))));
  } else if (kind == "isd") {
    topo::IsdConfig config;
    config.n_ases = static_cast<std::size_t>(flags.get_int("ases", 300));
    config.n_cores = static_cast<std::size_t>(flags.get_int("cores", 11));
    config.seed = seed;
    topology = topo::generate_isd(config);
  } else if (kind == "scionlab") {
    topo::ScionLabConfig config;
    config.n_cores = static_cast<std::size_t>(flags.get_int("cores", 21));
    config.seed = seed;
    topology = topo::generate_scionlab(config);
  } else if (kind == "multi-isd") {
    topo::MultiIsdConfig config;
    config.n_isds = static_cast<std::size_t>(flags.get_int("isds", 3));
    config.ases_per_isd =
        static_cast<std::size_t>(flags.get_int("isd-size", 12));
    config.seed = seed;
    topology = topo::generate_multi_isd(config);
  } else {
    std::cerr << "unknown --kind=" << kind << "\n";
    return usage();
  }

  const std::string out = flags.get("out", "");
  if (out.empty()) {
    // stdout is the CLI's product (same standing as the obs renderer); the
    // simulation core itself stays obs-routed.
    topo::write_topology(std::cout, topology);  // simlint:allow(raw-output)
  } else {
    std::ofstream file{out};
    if (!file) throw std::runtime_error("cannot write " + out);
    topo::write_topology(file, topology);
    std::cout << "wrote " << topology.as_count()  // simlint:allow(raw-output)
              << " ASes, "
              << topology.link_count() << " links to " << out << "\n";
  }
  return 0;
}

int cmd_beacon(const util::Flags& flags) {
  const topo::Topology topology = load_topology(flags);
  ctrl::BeaconingSimConfig config;
  const std::string algorithm = flags.get("algorithm", "diversity");
  config.server.algorithm = algorithm == "baseline"
                                ? ctrl::AlgorithmKind::kBaseline
                                : ctrl::AlgorithmKind::kDiversity;
  if (config.server.algorithm == ctrl::AlgorithmKind::kDiversity) {
    config.server.store_policy = ctrl::StorePolicy::kDiversityAware;
  }
  config.server.storage_limit =
      static_cast<std::size_t>(flags.get_int("storage", 60));
  config.server.dissemination_limit =
      static_cast<std::size_t>(flags.get_int("limit", 5));
  config.server.compute_crypto = flags.get_bool("crypto", false);
  config.sim_duration = util::Duration::hours(flags.get_int("hours", 3));
  config.warmup = util::Duration::hours(flags.get_int("warmup-hours", 0));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const std::string faults_file = flags.get("faults", "");
  if (!faults_file.empty()) {
    std::string error;
    if (!faults::FaultPlan::parse_file(faults_file, &config.faults, &error)) {
      throw std::runtime_error(faults_file + ": " + error);
    }
  }

  ctrl::BeaconingSim sim{topology, config};
  sim.run();
  const auto agg = sim.aggregate_stats();
  // simlint:allow(raw-output) — the report is the CLI's product
  std::cout << "algorithm: " << to_string(config.server.algorithm) << "\n"
            << "simulated: " << config.sim_duration.to_string()
            << " (warm-up " << config.warmup.to_string() << ")\n"
            << "PCBs sent: " << agg.pcbs_sent << " ("
            << agg.pcbs_originated << " originations)\n"
            << "bytes on the wire: " << sim.total_bytes().value() << "\n";
  util::EmpiricalCdf per_interface;
  for (const ctrl::InterfaceUsage& usage : sim.interface_usage()) {
    per_interface.add(static_cast<double>(usage.bytes.value()) /
                      config.sim_duration.as_seconds());
  }
  // simlint:allow(raw-output)
  std::cout << "per-interface B/s: " << per_interface.summary() << "\n";
  if (sim.injector() != nullptr) {
    const faults::FaultInjectorStats fs = sim.injector()->stats();
    // simlint:allow(raw-output)
    std::cout << "faults: " << fs.link_down_events << " link-down, "
              << fs.node_down_events << " node-down, " << fs.flaps
              << " flaps; PCBs revoked: " << agg.pcbs_revoked << "\n";
  }
  return 0;
}

int cmd_quality(const util::Flags& flags) {
  const topo::Topology topology = load_topology(flags);
  const auto pairs = static_cast<std::size_t>(flags.get_int("pairs", 100));
  const auto hours = flags.get_int("hours", 2);

  analysis::QualityEvaluator evaluator{topology};
  // simlint:allow(raw-output) — the report is the CLI's product
  std::cout << "algorithm     capacity/optimal   bytes\n";
  for (const auto algorithm :
       {ctrl::AlgorithmKind::kBaseline, ctrl::AlgorithmKind::kDiversity}) {
    ctrl::BeaconingSimConfig config;
    config.server.algorithm = algorithm;
    config.server.compute_crypto = false;
    if (algorithm == ctrl::AlgorithmKind::kDiversity) {
      config.server.store_policy = ctrl::StorePolicy::kDiversityAware;
    }
    config.sim_duration = util::Duration::hours(hours);
    ctrl::BeaconingSim sim{topology, config};
    sim.run();

    util::Rng rng{9};
    double achieved = 0, optimal = 0;
    for (std::size_t i = 0; i < pairs; ++i) {
      const auto a = static_cast<topo::AsIndex>(rng.index(topology.as_count()));
      const auto b = static_cast<topo::AsIndex>(rng.index(topology.as_count()));
      if (a == b) continue;
      auto paths = sim.paths_at(a, topology.as_id(b));
      auto reverse = sim.paths_at(b, topology.as_id(a));
      paths.insert(paths.end(), reverse.begin(), reverse.end());
      achieved += evaluator.of_paths(paths, a, b);
      optimal += evaluator.optimal(a, b);
    }
    // simlint:allow(raw-output)
    std::printf("%-13s %16.3f %9llu\n", to_string(algorithm),
                optimal > 0 ? achieved / optimal : 0.0,
                static_cast<unsigned long long>(sim.total_bytes().value()));
  }
  return 0;
}

int cmd_table1(const util::Flags& flags) {
  exp::Table1Config config;
  config.topology.n_isds =
      static_cast<std::size_t>(flags.get_int("isds", 4));
  config.topology.ases_per_isd =
      static_cast<std::size_t>(flags.get_int("isd-size", 16));
  config.sim_duration = util::Duration::minutes(flags.get_int("minutes", 60));
  const exp::Table1Result result = exp::run_table1_experiment(config);
  exp::print_table1(result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::Flags flags{argc, argv};
  exec::set_default_jobs(static_cast<std::size_t>(
      std::max<std::int64_t>(1, flags.get_int("jobs", 1))));
  obs::ObsSession session{
      "scion-mpr " + command, flags,
      static_cast<std::uint64_t>(flags.get_int("seed", 1))};
  try {
    if (command == "gen") return cmd_gen(flags);
    if (command == "beacon") return cmd_beacon(flags);
    if (command == "quality") return cmd_quality(flags);
    if (command == "table1") return cmd_table1(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
