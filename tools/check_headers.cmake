# Header self-containment gate: every public header must compile as its own
# translation unit (all of its dependencies reachable through its own
# includes). Run as a ctest via `cmake -P`:
#
#   cmake -DCXX=<compiler> -DINCLUDE_DIR=<root> -DOUT=<scratch dir>
#         [-DSCAN=<dir>] [-DHEADER=<file>] [-DEXTRA_FLAGS=<flags>]
#         -P check_headers.cmake
#
#   CXX          C++ compiler to invoke (-std=c++20 -fsyntax-only).
#   INCLUDE_DIR  include root the headers are resolved against (src/).
#   OUT          scratch directory for the generated one-line TUs.
#   SCAN         directory to glob *.hpp under (default: INCLUDE_DIR).
#   HEADER       check exactly one header instead of globbing (fixture mode;
#                the WILL_FAIL ctest points this at a deliberately
#                non-self-contained header).
#   EXTRA_FLAGS  extra compiler flags, ;-separated.
#
# Headers are checked in sorted order; every failure is reported before the
# script aborts, so one broken header does not mask another.

if(NOT DEFINED CXX OR NOT DEFINED INCLUDE_DIR OR NOT DEFINED OUT)
  message(FATAL_ERROR "check_headers.cmake needs -DCXX, -DINCLUDE_DIR, -DOUT")
endif()
if(NOT DEFINED SCAN)
  set(SCAN ${INCLUDE_DIR})
endif()

if(DEFINED HEADER)
  set(headers ${HEADER})
else()
  # Runtime glob, the script-mode equivalent of CONFIGURE_DEPENDS: this
  # script runs under `cmake -P` at ctest time, so the glob re-executes on
  # every test run and a freshly added header is gated immediately — no
  # reconfigure needed, no stale configure-time file list to go quietly
  # blind. (CONFIGURE_DEPENDS itself is meaningless in script mode; there
  # is no build system to attach the recheck to.)
  file(GLOB_RECURSE headers ${SCAN}/*.hpp)
  list(SORT headers)
endif()

file(MAKE_DIRECTORY ${OUT})

set(failures 0)
set(checked 0)
foreach(header IN LISTS headers)
  # The TU includes the header by the path users spell (relative to the
  # include root), so the check also proves the header's own includes
  # resolve through that root.
  file(RELATIVE_PATH rel ${INCLUDE_DIR} ${header})
  string(REPLACE "/" "_" tu_name ${rel})
  set(tu ${OUT}/${tu_name}.cpp)
  file(WRITE ${tu} "#include \"${rel}\"\n")

  set(flags -std=c++20 -fsyntax-only -I ${INCLUDE_DIR})
  if(DEFINED EXTRA_FLAGS)
    list(APPEND flags ${EXTRA_FLAGS})
  endif()
  execute_process(
      COMMAND ${CXX} ${flags} ${tu}
      RESULT_VARIABLE rc
      ERROR_VARIABLE err
      OUTPUT_QUIET)
  math(EXPR checked "${checked} + 1")
  if(NOT rc EQUAL 0)
    math(EXPR failures "${failures} + 1")
    message(SEND_ERROR "header not self-contained: ${rel}\n${err}")
  endif()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR
      "${failures} of ${checked} header(s) failed the self-containment gate")
endif()
message(STATUS "header self-containment: ${checked} header(s) OK")
