// simlint include-graph analyzer — architecture lint for the simulator.
//
// The simulator is layered (util at the bottom, experiments at the top) and
// the layering is what keeps the hot path lean: a low layer that reaches up
// pulls protocol machinery into code that benchmarks assume is dependency-
// free, and an include cycle makes header self-containment unprovable. The
// compiler enforces neither, so this analyzer does:
//
//   layering       a file in module A includes a header of module B that is
//                  not in A's declared dependency set (see default_layering()
//                  and DESIGN.md). Also fired when A itself is not declared,
//                  so new top-level directories must be registered.
//   module-cycle   the observed module graph contains a cycle. A cycle means
//                  the declared DAG and reality have diverged in a way the
//                  per-edge check alone cannot localize, so the whole cycle
//                  is reported once, on the edge that closes it.
//
// Edges are read from `#include "..."` lines only (<system> includes carry no
// layering information). Includes inside block comments and inside disabled
// `#if 0` / `#if false` regions do not create edges. A deliberate exception
// is silenced with `// simlint:allow(layering)` on the include line or the
// line above, same escape hatch as the determinism rules.
//
// The observed graph can be dumped as deterministic DOT (sorted nodes and
// edges, include-site counts as labels) for review in DESIGN.md updates:
// `simlint --dot=build/include_graph.dot src`.
#pragma once

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tools/simlint_core.hpp"

namespace scion::lint {

/// The declared module DAG: module -> modules it may include (not counting
/// itself; intra-module includes are always fine). Mirrors the table in
/// DESIGN.md — update both together, and keep this map a DAG: the analyzer
/// trusts it when explaining findings.
inline const std::map<std::string, std::set<std::string>>& default_layering() {
  static const std::map<std::string, std::set<std::string>> kRules{
      {"util", {}},
      {"crypto", {}},
      {"obs", {"util"}},
      {"exec", {"obs", "util"}},
      {"topology", {"util"}},
      {"simnet", {"obs", "util"}},
      {"analysis", {"topology", "obs", "util"}},
      {"faults", {"simnet", "topology", "obs", "util"}},
      {"bgp", {"faults", "simnet", "topology", "obs", "util"}},
      {"core",
       {"analysis", "crypto", "exec", "faults", "simnet", "topology", "obs",
        "util"}},
      {"scion",
       {"analysis", "core", "crypto", "faults", "simnet", "topology", "obs",
        "util"}},
      {"experiments",
       {"analysis", "bgp", "core", "crypto", "exec", "faults", "obs", "scion",
        "simnet", "topology", "util"}},
  };
  return kRules;
}

namespace detail {

/// Module of a source path: the segment after the last "src" component
/// ("src/bgp/speaker.cpp" -> "bgp", "/repo/src/util/rng.hpp" -> "util").
/// Empty for files outside src/ (bench, tools, tests are consumers of the
/// layered world, not part of it) or directly under it.
inline std::string module_of(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) {
      parts.push_back(path.substr(start));
      break;
    }
    parts.push_back(path.substr(start, slash - start));
    start = slash + 1;
  }
  for (std::size_t i = parts.size(); i-- > 0;) {
    // Need a module directory and a file name after the "src" component.
    if (parts[i] == "src" && i + 2 < parts.size()) {
      return std::string{parts[i + 1]};
    }
  }
  return {};
}

/// The target of a project-local include directive in `code` (the quoted
/// path of `#include "..."`), or "" if the line is not one.
inline std::string quoted_include(std::string_view code) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= code.size() || code[i] != '#') return {};
  ++i;
  skip_ws();
  if (code.substr(i, 7) != "include") return {};
  i += 7;
  skip_ws();
  if (i >= code.size() || code[i] != '"') return {};
  const std::size_t close = code.find('"', i + 1);
  if (close == std::string_view::npos) return {};
  return std::string{code.substr(i + 1, close - i - 1)};
}

/// True if `code` is a conditional-compilation directive of the given kind
/// ("if", "ifdef", "ifndef", "elif", "else", "endif").
inline bool is_pp(std::string_view code, std::string_view kind,
                  std::string* rest = nullptr) {
  std::size_t i = 0;
  while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
  if (i >= code.size() || code[i] != '#') return false;
  ++i;
  while (i < code.size() && (code[i] == ' ' || code[i] == '\t')) ++i;
  if (code.substr(i, kind.size()) != kind) return false;
  const std::size_t end = i + kind.size();
  if (end < code.size() && (std::isalnum(static_cast<unsigned char>(code[end])) ||
                            code[end] == '_')) {
    return false;  // e.g. "#ifdef" is not "#if"
  }
  if (rest != nullptr) *rest = std::string{code.substr(end)};
  return true;
}

/// True if the #if condition text disables the region outright (`0`/`false`).
inline bool disabled_condition(std::string_view rest) {
  std::size_t b = 0, e = rest.size();
  while (b < e && std::isspace(static_cast<unsigned char>(rest[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(rest[e - 1]))) --e;
  const std::string_view cond = rest.substr(b, e - b);
  return cond == "0" || cond == "false";
}

}  // namespace detail

class IncludeGraph {
 public:
  IncludeGraph() : rules_{default_layering()} {}

  /// Replaces the declared layering (tests use small synthetic DAGs).
  void set_rules(std::map<std::string, std::set<std::string>> rules) {
    rules_ = std::move(rules);
  }

  /// Parses `content` for include edges. Call for every file before check();
  /// feed files in sorted order for a deterministic report.
  void add_file(const std::string& path, const std::string& content);

  /// Layering and cycle findings over all registered files.
  std::vector<Finding> check() const;

  /// The observed module graph as deterministic DOT (sorted nodes/edges,
  /// include-site counts as edge labels; declared-but-unobserved modules
  /// appear as isolated nodes).
  std::string to_dot() const;

 private:
  struct Edge {
    std::string file;
    int line{0};
    std::string from;
    std::string to;
    bool suppressed{false};  // simlint:allow(layering)
  };

  std::map<std::string, std::set<std::string>> rules_;
  std::vector<Edge> edges_;  // registration order (= file order, line order)
};

inline void IncludeGraph::add_file(const std::string& path,
                                   const std::string& content) {
  using namespace detail;
  const std::string module = module_of(path);
  if (module.empty()) return;  // outside the layered src/ tree

  const std::vector<std::string> lines = split_lines(content);
  bool in_block_comment = false;
  int disabled_depth = 0;  // nesting depth inside an `#if 0` region
  std::vector<std::string> carried_allow;

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& raw = lines[i];
    std::vector<std::string> allow = allowed_rules(raw);
    const std::vector<std::string> effective_allow = [&] {
      std::vector<std::string> v = carried_allow;
      v.insert(v.end(), allow.begin(), allow.end());
      return v;
    }();
    carried_allow = std::move(allow);

    // Comment stripping: same state machine as Linter::run(). An include
    // spelled inside /* ... */ is documentation, not an edge.
    std::string_view code = code_part(raw);
    if (in_block_comment) {
      const std::size_t close = code.find("*/");
      if (close == std::string_view::npos) continue;
      code = code.substr(close + 2);
      in_block_comment = false;
    }
    std::string code_buf;
    while (true) {
      const std::size_t open = code.find("/*");
      if (open == std::string_view::npos) {
        code_buf.append(code);
        break;
      }
      code_buf.append(code.substr(0, open));
      const std::size_t close = code.find("*/", open + 2);
      if (close == std::string_view::npos) {
        in_block_comment = true;
        break;
      }
      code = code.substr(close + 2);
    }

    // `#if 0` tracking: a disabled region contributes no edges. Inner #if
    // blocks nest; `#else`/`#elif` of the disabling #if re-enables.
    std::string cond;
    if (disabled_depth > 0) {
      if (is_pp(code_buf, "if") || is_pp(code_buf, "ifdef") ||
          is_pp(code_buf, "ifndef")) {
        ++disabled_depth;
      } else if (is_pp(code_buf, "endif")) {
        --disabled_depth;
      } else if (disabled_depth == 1 &&
                 (is_pp(code_buf, "else") || is_pp(code_buf, "elif"))) {
        disabled_depth = 0;
      }
      continue;
    }
    if (is_pp(code_buf, "if", &cond) && disabled_condition(cond)) {
      disabled_depth = 1;
      continue;
    }

    const std::string target = quoted_include(code_buf);
    if (target.empty()) continue;
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string to = target.substr(0, slash);
    if (to == module) continue;  // intra-module

    const bool suppressed =
        std::find(effective_allow.begin(), effective_allow.end(),
                  "layering") != effective_allow.end();
    edges_.push_back(
        Edge{path, static_cast<int>(i + 1), module, to, suppressed});
  }
}

inline std::vector<Finding> IncludeGraph::check() const {
  std::vector<Finding> findings;

  // Per-edge layering check, in registration order.
  for (const Edge& e : edges_) {
    if (e.suppressed) continue;
    const auto it = rules_.find(e.from);
    if (it == rules_.end()) {
      findings.push_back(Finding{
          e.file, e.line, "layering",
          "module '" + e.from +
              "' is not declared in the layering map; register it in "
              "default_layering() and DESIGN.md"});
      continue;
    }
    if (!it->second.contains(e.to)) {
      std::string deps;
      for (const std::string& d : it->second) {
        if (!deps.empty()) deps += ", ";
        deps += d;
      }
      findings.push_back(Finding{
          e.file, e.line, "layering",
          "module '" + e.from + "' may not include module '" + e.to +
              "' (declared deps: " + (deps.empty() ? "none" : deps) + ")"});
    }
  }

  // Cycle detection over the observed graph (suppressed edges included:
  // an allow-directive silences the layering report, not the structure).
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::pair<std::string, std::string>, const Edge*> first_edge;
  for (const Edge& e : edges_) {
    adj[e.from].insert(e.to);
    first_edge.try_emplace({e.from, e.to}, &e);
  }
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  const auto dfs = [&](const auto& self, const std::string& m) -> void {
    color[m] = 1;
    stack.push_back(m);
    const auto it = adj.find(m);
    if (it != adj.end()) {
      for (const std::string& next : it->second) {
        if (color[next] == 2) continue;
        if (color[next] == 1) {
          // Back edge: the cycle is the stack suffix from `next`, closed
          // by m -> next. Report on that closing include site.
          std::string path;
          for (std::size_t i = 0; i < stack.size(); ++i) {
            if (path.empty() && stack[i] != next) continue;
            path += stack[i] + " -> ";
          }
          path += next;
          const Edge* closing = first_edge.at({m, next});
          findings.push_back(Finding{closing->file, closing->line,
                                     "module-cycle",
                                     "include cycle: " + path});
          continue;
        }
        self(self, next);
      }
    }
    stack.pop_back();
    color[m] = 2;
  };
  for (const auto& [m, _] : adj) {
    if (color[m] == 0) dfs(dfs, m);
  }
  return findings;
}

inline std::string IncludeGraph::to_dot() const {
  std::map<std::string, std::map<std::string, int>> counted;
  std::set<std::string> nodes;
  for (const auto& [m, _] : rules_) nodes.insert(m);
  for (const Edge& e : edges_) {
    nodes.insert(e.from);
    nodes.insert(e.to);
    ++counted[e.from][e.to];
  }
  std::ostringstream out;
  out << "// Observed module include graph (simlint --dot). Deterministic:\n"
         "// nodes and edges sorted, labels are include-site counts.\n"
         "digraph include_graph {\n"
         "  rankdir=BT;\n";
  for (const std::string& n : nodes) {
    out << "  \"" << n << "\";\n";
  }
  for (const auto& [from, tos] : counted) {
    for (const auto& [to, count] : tos) {
      out << "  \"" << from << "\" -> \"" << to << "\" [label=\"" << count
          << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace scion::lint
