#!/bin/sh
# Runs every bench binary, headline figures first, capturing combined output.
# Usage: tools/run_benches.sh [output-file]
out="${1:-bench_output.txt}"
: > "$out"
ordered="bench_table1_overhead_scope bench_fig5_overhead bench_fig6a_resilience bench_fig6b_capacity bench_fig7_scionlab_resilience bench_fig8_scionlab_capacity bench_fig9_scionlab_bandwidth bench_micro bench_ablation_scoring bench_ablation_sweeps bench_ext_latency"
for name in $ordered; do
  b="build/bench/$name"
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "=== $b ===" >> "$out"
    "$b" >> "$out" 2>&1
    echo >> "$out"
  fi
done
# Catch any bench not in the explicit list.
for b in build/bench/*; do
  case " $ordered " in
    *" $(basename "$b") "*) continue ;;
  esac
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "=== $b ===" >> "$out"
    "$b" >> "$out" 2>&1
    echo >> "$out"
  fi
done
echo "bench suite complete: $out"
