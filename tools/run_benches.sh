#!/bin/sh
# Runs every bench binary, headline figures first, capturing combined output
# and collecting each binary's BENCH_<name>.json report into one directory.
# Usage: tools/run_benches.sh [--checked] [--jobs=N] [--baseline=DIR]
#                             [output-file] [json-dir]
#
# --baseline=DIR diffs the collected reports against a directory of
# baseline BENCH_*.json files with tools/bench_diff after the suite
# completes (report written next to the json output); the script then
# exits non-zero on any deterministic regression.
#
# --checked runs the binaries from the build-checked tree (CMake preset
# `checked`, SCION_MPR_CHECKED=ON) so every SCION_CHECK/SCION_DCHECK
# invariant is live during the benchmark workloads — slower, but a full
# soak of the hot-path assertions over realistic inputs.
#
# --jobs=N passes a worker-thread count through to every bench; results
# are byte-identical for any N (the exec layer's determinism contract),
# and the value is recorded in each BENCH json manifest.
build_dir="build"
jobs_flag=""
baseline_dir=""
while :; do
  case "${1:-}" in
    --checked)
      build_dir="build-checked"
      shift
      if [ ! -d "$build_dir/bench" ]; then
        echo "error: $build_dir not built; run: cmake --preset checked && cmake --build --preset checked" >&2
        exit 1
      fi
      ;;
    --jobs=*)
      jobs_flag="$1"
      shift
      ;;
    --baseline=*)
      baseline_dir="${1#--baseline=}"
      shift
      ;;
    *) break ;;
  esac
done
out="${1:-bench_output.txt}"
json_dir="${2:-bench_out}"
mkdir -p "$json_dir"
: > "$out"

run_bench() {
  b="$1"
  name="$(basename "$b")"
  echo "=== $b ===" >> "$out"
  # $jobs_flag is intentionally unquoted: empty means "no extra flag".
  "$b" "--bench-out=$json_dir/BENCH_${name#bench_}.json" $jobs_flag >> "$out" 2>&1
  echo >> "$out"
}

ordered="bench_table1_overhead_scope bench_fig5_overhead bench_fig6a_resilience bench_dyn_resilience bench_fig6b_capacity bench_fig7_scionlab_resilience bench_fig8_scionlab_capacity bench_fig9_scionlab_bandwidth bench_micro bench_ablation_scoring bench_ablation_sweeps bench_ext_latency"
for name in $ordered; do
  b="$build_dir/bench/$name"
  if [ -x "$b" ] && [ -f "$b" ]; then
    run_bench "$b"
  fi
done
# Catch any bench not in the explicit list.
for b in "$build_dir"/bench/*; do
  case " $ordered " in
    *" $(basename "$b") "*) continue ;;
  esac
  if [ -x "$b" ] && [ -f "$b" ]; then
    run_bench "$b"
  fi
done
echo "bench suite complete: $out (reports in $json_dir/)"

if [ -n "$baseline_dir" ]; then
  "$build_dir/tools/bench_diff" "--baseline=$baseline_dir" \
    "--current=$json_dir" "--report-out=$json_dir/bench_diff.txt" || {
    echo "bench suite regressed vs baseline $baseline_dir (see $json_dir/bench_diff.txt)" >&2
    exit 1
  }
fi
