// simlint driver: lints the given files / directories (recursively, *.hpp
// *.cpp *.h) and reports determinism hazards plus architecture (layering)
// violations. See simlint_core.hpp for the determinism rule set,
// simlint_includes.hpp for the include-graph rules, and the
// `// simlint:allow(<rule>)` escape hatch shared by both.
//
// --dot=PATH writes the observed module include graph as deterministic DOT
// (sorted nodes/edges) so DESIGN.md's dependency table can be reviewed
// against reality.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
//
// Registered as a ctest (`ctest -R simlint`) over src/, bench/, and tools/,
// so tier-1 keeps the tree hazard-free. Directories named simlint_fixtures
// hold deliberately-broken test vectors and are skipped during directory
// walks (they can still be linted by passing the files explicitly, which is
// how the WILL_FAIL fixture tests invoke them).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/simlint_core.hpp"
#include "tools/simlint_includes.hpp"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool fixture_dir(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "simlint_fixtures") return true;
  }
  return false;
}

bool add_path(scion::lint::Linter& linter, scion::lint::IncludeGraph& graph,
              const fs::path& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
      if (entry.is_regular_file() && lintable(entry.path()) &&
          !fixture_dir(entry.path())) {
        files.push_back(entry.path());
      }
    }
    if (ec) {
      std::fprintf(stderr, "simlint: cannot walk %s: %s\n",
                   path.string().c_str(), ec.message().c_str());
      return false;
    }
    // Deterministic report order regardless of directory enumeration.
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) {
      if (!add_path(linter, graph, f)) return false;
    }
    return true;
  }

  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "simlint: cannot read %s\n", path.string().c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = std::move(buf).str();
  linter.add_file(path.generic_string(), content);
  graph.add_file(path.generic_string(), content);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dot_path;
  std::vector<const char*> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dot=", 6) == 0) {
      dot_path = argv[i] + 6;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: simlint [--dot=PATH] <file-or-dir>...\n"
                 "rules: wall-clock std-rng unordered-iter float-accum "
                 "raw-output raw-thread layering module-cycle\n"
                 "suppress with // simlint:allow(<rule>) on or above the "
                 "offending line\n"
                 "--dot=PATH writes the observed module include graph as "
                 "deterministic DOT\n");
    return 2;
  }

  scion::lint::Linter linter;
  scion::lint::IncludeGraph graph;
  for (const char* input : inputs) {
    if (!add_path(linter, graph, input)) return 2;
  }

  std::vector<scion::lint::Finding> findings = linter.run();
  for (scion::lint::Finding& f : graph.check()) {
    findings.push_back(std::move(f));
  }
  for (const scion::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }

  if (!dot_path.empty()) {
    std::ofstream out{dot_path, std::ios::binary};
    if (!out) {
      std::fprintf(stderr, "simlint: cannot write %s\n", dot_path.c_str());
      return 2;
    }
    out << graph.to_dot();
  }

  if (!findings.empty()) {
    std::fprintf(stderr, "simlint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
