// simlint driver: lints the given files / directories (recursively, *.hpp
// *.cpp *.h) and reports determinism hazards. See simlint_core.hpp for the
// rule set and the `// simlint:allow(<rule>)` escape hatch.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
//
// Registered as a ctest (`ctest -R simlint`) over src/, so tier-1 keeps the
// tree hazard-free.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/simlint_core.hpp"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool add_path(scion::lint::Linter& linter, const fs::path& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        files.push_back(entry.path());
      }
    }
    if (ec) {
      std::fprintf(stderr, "simlint: cannot walk %s: %s\n",
                   path.string().c_str(), ec.message().c_str());
      return false;
    }
    // Deterministic report order regardless of directory enumeration.
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) {
      if (!add_path(linter, f)) return false;
    }
    return true;
  }

  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "simlint: cannot read %s\n", path.string().c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  linter.add_file(path.generic_string(), std::move(buf).str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: simlint <file-or-dir>...\n"
                 "rules: wall-clock std-rng unordered-iter float-accum "
                 "raw-output\n"
                 "suppress with // simlint:allow(<rule>) on or above the "
                 "offending line\n");
    return 2;
  }

  scion::lint::Linter linter;
  for (int i = 1; i < argc; ++i) {
    if (!add_path(linter, argv[i])) return 2;
  }

  const std::vector<scion::lint::Finding> findings = linter.run();
  for (const scion::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "simlint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
