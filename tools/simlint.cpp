// simlint driver: lints the given files / directories (recursively, *.hpp
// *.cpp *.h) and reports determinism hazards, architecture (layering)
// violations, and hot-path cost hazards. See simlint_core.hpp for the
// determinism rule set, simlint_includes.hpp for the include-graph rules,
// simlint_hotpath.hpp for the hot-path-cost rules, and the
// `// simlint:allow(<rule>)` escape hatch shared by all three.
//
// --dot=PATH writes the observed module include graph as deterministic DOT
// (sorted nodes/edges) so DESIGN.md's dependency table can be reviewed
// against reality.
//
// --cost-report=PATH writes the deterministic hot-path cost JSON (per-file
// rule-match counts inside annotated regions, simlint:allow-suppressed
// sites included). --cost-baseline=PATH diffs those counts against a
// checked-in report (tools/cost_baseline.json) and fails on any increase.
//
// --state-report=PATH / --state-baseline=PATH do the same for the
// shared-state inventory (simlint_state.hpp): per-file mutable-global /
// unguarded-shared / guarded-member counts, gated against
// tools/state_baseline.json.
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
//
// Registered as a ctest (`ctest -R simlint`) over src/, bench/, and tools/,
// so tier-1 keeps the tree hazard-free. Directories named simlint_fixtures
// hold deliberately-broken test vectors and are skipped during directory
// walks (they can still be linted by passing the files explicitly, which is
// how the WILL_FAIL fixture tests invoke them).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/simlint_core.hpp"
#include "tools/simlint_hotpath.hpp"
#include "tools/simlint_includes.hpp"
#include "tools/simlint_state.hpp"

namespace {

namespace fs = std::filesystem;

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool fixture_dir(const fs::path& p) {
  for (const auto& part : p) {
    if (part == "simlint_fixtures") return true;
  }
  return false;
}

bool add_path(scion::lint::Linter& linter, scion::lint::IncludeGraph& graph,
              scion::lint::HotPathAnalyzer& hotpath,
              scion::lint::StateAnalyzer& state, const fs::path& path) {
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
      if (entry.is_regular_file() && lintable(entry.path()) &&
          !fixture_dir(entry.path())) {
        files.push_back(entry.path());
      }
    }
    if (ec) {
      std::fprintf(stderr, "simlint: cannot walk %s: %s\n",
                   path.string().c_str(), ec.message().c_str());
      return false;
    }
    // Deterministic report order regardless of directory enumeration.
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) {
      if (!add_path(linter, graph, hotpath, state, f)) return false;
    }
    return true;
  }

  std::ifstream in{path, std::ios::binary};
  if (!in) {
    std::fprintf(stderr, "simlint: cannot read %s\n", path.string().c_str());
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string content = std::move(buf).str();
  linter.add_file(path.generic_string(), content);
  graph.add_file(path.generic_string(), content);
  hotpath.add_file(path.generic_string(), content);
  state.add_file(path.generic_string(), content);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dot_path;
  std::string cost_report_path;
  std::string cost_baseline_path;
  std::string state_report_path;
  std::string state_baseline_path;
  std::vector<const char*> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--dot=", 6) == 0) {
      dot_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--cost-report=", 14) == 0) {
      cost_report_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--cost-baseline=", 16) == 0) {
      cost_baseline_path = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--state-report=", 15) == 0) {
      state_report_path = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--state-baseline=", 17) == 0) {
      state_baseline_path = argv[i] + 17;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: simlint [--dot=PATH] [--cost-report=PATH] "
                 "[--cost-baseline=PATH]\n"
                 "               [--state-report=PATH] "
                 "[--state-baseline=PATH] <file-or-dir>...\n"
                 "rules: wall-clock std-rng unordered-iter float-accum "
                 "raw-output raw-thread layering module-cycle\n"
                 "       hot-alloc hot-string hot-copy-arg hot-map-lookup "
                 "hot-unlabeled-schedule\n"
                 "       (inside SCION_HOT_FN / SCION_HOT_PATH regions)\n"
                 "       mutable-global unguarded-shared\n"
                 "suppress with // simlint:allow(<rule>) on or above the "
                 "offending line\n"
                 "--dot=PATH writes the observed module include graph as "
                 "deterministic DOT\n"
                 "--cost-report=PATH writes the hot-path cost JSON; "
                 "--cost-baseline=PATH fails on regressions against it\n"
                 "--state-report=PATH writes the shared-state inventory "
                 "JSON; --state-baseline=PATH fails on regressions\n");
    return 2;
  }

  scion::lint::Linter linter;
  scion::lint::IncludeGraph graph;
  scion::lint::HotPathAnalyzer hotpath;
  scion::lint::StateAnalyzer state;
  for (const char* input : inputs) {
    if (!add_path(linter, graph, hotpath, state, input)) return 2;
  }

  std::vector<scion::lint::Finding> findings = linter.run();
  for (scion::lint::Finding& f : graph.check()) {
    findings.push_back(std::move(f));
  }
  for (scion::lint::Finding& f : hotpath.check()) {
    findings.push_back(std::move(f));
  }
  for (scion::lint::Finding& f : state.check()) {
    findings.push_back(std::move(f));
  }
  if (!cost_baseline_path.empty()) {
    std::ifstream in{cost_baseline_path, std::ios::binary};
    if (!in) {
      std::fprintf(stderr, "simlint: cannot read cost baseline %s\n",
                   cost_baseline_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    for (scion::lint::Finding& f : hotpath.diff_baseline(buf.str())) {
      findings.push_back(std::move(f));
    }
  }
  if (!state_baseline_path.empty()) {
    std::ifstream in{state_baseline_path, std::ios::binary};
    if (!in) {
      std::fprintf(stderr, "simlint: cannot read state baseline %s\n",
                   state_baseline_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    for (scion::lint::Finding& f : state.diff_baseline(buf.str())) {
      findings.push_back(std::move(f));
    }
  }
  for (const scion::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                 f.rule.c_str(), f.message.c_str());
  }

  if (!dot_path.empty()) {
    std::ofstream out{dot_path, std::ios::binary};
    if (!out) {
      std::fprintf(stderr, "simlint: cannot write %s\n", dot_path.c_str());
      return 2;
    }
    out << graph.to_dot();
  }
  if (!cost_report_path.empty()) {
    std::ofstream out{cost_report_path, std::ios::binary};
    if (!out) {
      std::fprintf(stderr, "simlint: cannot write %s\n",
                   cost_report_path.c_str());
      return 2;
    }
    out << hotpath.cost_report_json();
  }
  if (!state_report_path.empty()) {
    std::ofstream out{state_report_path, std::ios::binary};
    if (!out) {
      std::fprintf(stderr, "simlint: cannot write %s\n",
                   state_report_path.c_str());
      return 2;
    }
    out << state.state_report_json();
  }

  if (!findings.empty()) {
    std::fprintf(stderr, "simlint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
