// simlint shared-state analyzer — the mutable-state inventory for parallel
// execution.
//
// ROADMAP item 2 shards the serial event loop across workers; before that
// lands, "what mutable state is shared, and under which lock?" must be a
// machine-checked inventory, not tribal knowledge. Clang Thread Safety
// Analysis (src/util/thread_safety.hpp) proves lock protocols wherever a
// Clang toolchain builds the tree; this analyzer is the
// toolchain-independent half, enforcing two rules on the source text:
//
//   mutable-global    non-const namespace-scope state, and `static` /
//                     `thread_local` mutable variables at any scope
//                     (including #define bodies, so macro-generated statics
//                     are caught). Every process-wide mutable object is a
//                     shared-state hazard the moment the event loop runs on
//                     more than one thread, so each one must be on the
//                     built-in allowlist (the interned metric/label
//                     registries' magic statics) or carry a
//                     `// simlint:allow(mutable-global)` directive whose
//                     comment says why it is safe.
//   unguarded-shared  a class that owns a mutex declares a lock protocol;
//                     every mutable data member it owns must then carry a
//                     SCION_GUARDED_BY / SCION_PT_GUARDED_BY annotation (or
//                     an allow directive explaining why it needs none).
//                     Without the annotation the Clang analysis verifies
//                     nothing about that member, silently.
//
// The full inventory — including allowlisted and simlint:allow-suppressed
// sites, plus a `guarded-member` count of annotated members — is emitted as
// deterministic JSON (--state-report=PATH) and diffed against the
// checked-in tools/state_baseline.json (--state-baseline=PATH): any
// per-(file, rule) count increase is a `state-regression` finding, exactly
// like the PR 6 hot-path cost baseline. New shared state therefore cannot
// land by accident; it lands by regenerating the baseline in the same PR
// that argues for it (see DESIGN.md "Concurrency discipline").
//
// Scanning is a per-line state machine that strips comments and string /
// character literals (so braces and keywords inside literals — e.g. the
// JSON emitters in this very directory — never confuse scope tracking),
// skips `#if 0` regions, and honours allow directives on the offending line
// or the line above. Known, accepted imprecision of a line scanner:
// `static const char* p` (mutable pointer to const pointee) passes the
// const test, and scope classification is lexical (the keyword preceding
// the opening brace).
#pragma once

#include <algorithm>
#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tools/simlint_core.hpp"
#include "tools/simlint_hotpath.hpp"
#include "tools/simlint_includes.hpp"

namespace scion::lint {

/// Built-in allowlist for the mutable-global rule: (file suffix, variable
/// name) pairs naming the sanctioned magic statics — the interned
/// metric/label registries that anchor the telemetry layer. Anything else
/// justifies itself with an in-source `// simlint:allow(mutable-global)`
/// directive, so the reasoning lives next to the declaration.
inline const std::vector<std::pair<std::string, std::string>>&
default_state_allowlist() {
  static const std::vector<std::pair<std::string, std::string>> kAllow{
      {"src/obs/event_profile.cpp", "profiler"},  // EventProfiler::global()
      {"src/obs/metrics.cpp", "registry"},        // MetricsRegistry::global()
      {"src/obs/profile.cpp", "profiler"},        // PhaseProfiler::global()
  };
  return kAllow;
}

class StateAnalyzer {
 public:
  void add_file(std::string name, std::string content) {
    files_.emplace_back(std::move(name), std::move(content));
  }

  /// Replaces the built-in allowlist (tests use an empty one).
  void set_allowlist(std::vector<std::pair<std::string, std::string>> allow) {
    allowlist_ = std::move(allow);
  }

  /// Scans every registered file; returns unsuppressed findings in file
  /// order and accumulates the counts behind state_report_json().
  std::vector<Finding> check();

  /// Deterministic JSON inventory: per-file and total counts of
  /// mutable-global and unguarded-shared sites (allowlisted and
  /// simlint:allow-suppressed ones included) plus guarded-member (members
  /// carrying SCION_GUARDED_BY). Written by the driver's
  /// --state-report=PATH; diffed against --state-baseline=PATH.
  std::string state_report_json() const;

  /// Compares accumulated counts against a baseline report (the JSON text
  /// produced by state_report_json on an earlier tree). Any per-file
  /// per-rule increase — files absent from the baseline count as zero — is
  /// a "state-regression" finding naming the file, the rule, and both
  /// counts. Run check() first.
  std::vector<Finding> diff_baseline(const std::string& baseline_json) const;

 private:
  void scan_file(const std::string& name, const std::string& content,
                 std::vector<Finding>& findings);

  std::vector<std::pair<std::string, std::string>> files_;
  std::vector<std::pair<std::string, std::string>> allowlist_ =
      default_state_allowlist();
  // file -> rule -> count (allowed/allowlisted sites included: the report
  // is the budget, the lint findings are the gate).
  std::map<std::string, std::map<std::string, int>> counts_;
};

namespace state_detail {

/// Carries multi-line lexical state for strip_noncode().
struct LineScanState {
  bool in_block_comment{false};
  bool in_raw_string{false};
  std::string raw_delim;
};

/// Returns `line` with comments and string/character literals blanked out,
/// so downstream regexes and the brace tracker only ever see real code.
/// Handles // and /*...*/ comments (the latter across lines), "..." with
/// escapes, R"delim(...)delim" raw strings (across lines), '...' character
/// literals, and leaves numeric digit separators (1'000'000) alone.
inline std::string strip_noncode(const std::string& line, LineScanState& st) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  const std::size_t n = line.size();
  if (st.in_block_comment) {
    const std::size_t close = line.find("*/");
    if (close == std::string::npos) return out;
    i = close + 2;
    st.in_block_comment = false;
  } else if (st.in_raw_string) {
    const std::string end = ")" + st.raw_delim + "\"";
    const std::size_t close = line.find(end);
    if (close == std::string::npos) return out;
    i = close + end.size();
    st.in_raw_string = false;
    out.push_back(' ');
  }
  while (i < n) {
    const char c = line[i];
    if (c == '/' && i + 1 < n && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < n && line[i + 1] == '*') {
      const std::size_t close = line.find("*/", i + 2);
      if (close == std::string::npos) {
        st.in_block_comment = true;
        return out;
      }
      i = close + 2;
      out.push_back(' ');
      continue;
    }
    if (c == '"') {
      const bool raw =
          i > 0 && line[i - 1] == 'R' &&
          (i < 2 || (!std::isalnum(static_cast<unsigned char>(line[i - 2])) &&
                     line[i - 2] != '_'));
      if (raw) {
        const std::size_t paren = line.find('(', i + 1);
        if (paren == std::string::npos) return out;  // malformed; bail out
        const std::string delim = line.substr(i + 1, paren - (i + 1));
        const std::string end = ")" + delim + "\"";
        const std::size_t close = line.find(end, paren + 1);
        if (close == std::string::npos) {
          st.in_raw_string = true;
          st.raw_delim = delim;
          return out;
        }
        i = close + end.size();
      } else {
        std::size_t j = i + 1;
        while (j < n && line[j] != '"') {
          if (line[j] == '\\') ++j;
          ++j;
        }
        i = j < n ? j + 1 : n;
      }
      out.push_back(' ');
      continue;
    }
    // A quote after an identifier/digit character is a digit separator
    // (1'000'000) or part of a literal suffix, not a character literal.
    if (c == '\'' &&
        (i == 0 || (!std::isalnum(static_cast<unsigned char>(line[i - 1])) &&
                    line[i - 1] != '_'))) {
      std::size_t j = i + 1;
      while (j < n && line[j] != '\'') {
        if (line[j] == '\\') ++j;
        ++j;
      }
      i = j < n ? j + 1 : n;
      out.push_back(' ');
      continue;
    }
    out.push_back(c);
    ++i;
  }
  return out;
}

/// Lexical scope kinds for brace tracking. The file's top level counts as
/// namespace scope.
enum class ScopeKind { kNamespace, kClass, kBlock };

/// Classifies the scope a `{` opens from the code text between the previous
/// `;`/brace boundary and the brace itself.
inline ScopeKind classify_open(std::string_view before) {
  static const std::regex kNamespace{R"(\bnamespace\b)"};
  static const std::regex kClass{R"(\b(?:class|struct|union|enum)\b)"};
  const std::string s{before};
  if (std::regex_search(s, kNamespace)) return ScopeKind::kNamespace;
  if (std::regex_search(s, kClass)) return ScopeKind::kClass;
  return ScopeKind::kBlock;
}

/// First identifier-ish token of the line ("" when none).
inline std::string first_word(std::string_view code) {
  std::size_t i = 0;
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  std::size_t j = i;
  while (j < code.size() &&
         (std::isalnum(static_cast<unsigned char>(code[j])) ||
          code[j] == '_')) {
    ++j;
  }
  return std::string{code.substr(i, j - i)};
}

/// Keywords that open lines which are never the variable declarations the
/// mutable-global / unguarded-shared rules consider.
inline bool keyword_line(const std::string& word) {
  static const std::set<std::string> kKeywords{
      "break",    "case",     "catch",    "class",     "concept",
      "continue", "delete",   "do",       "else",      "enum",
      "explicit", "for",      "friend",   "goto",      "if",
      "namespace", "new",     "operator", "private",   "protected",
      "public",   "requires", "return",   "sizeof",    "struct",
      "switch",   "template", "throw",    "try",       "typedef",
      "typename", "union",    "using",    "while"};
  return kKeywords.contains(word);
}

/// Last identifier token in `decl` — the declared variable name for the
/// declaration shapes this analyzer matches.
inline std::string last_identifier(std::string_view decl) {
  static const std::regex kIdent{R"([A-Za-z_]\w*)"};
  const std::string s{decl};
  std::string last;
  for (std::sregex_iterator it{s.begin(), s.end(), kIdent}, end; it != end;
       ++it) {
    last = it->str();
  }
  return last;
}

/// const / constexpr exempt a declaration from both rules. constinit does
/// NOT: it promises constant *initialization*; the object stays mutable.
inline bool has_const_token(std::string_view decl) {
  static const std::regex kConst{R"(\b(?:const|constexpr)\b)"};
  return std::regex_search(std::string{decl}, kConst);
}

/// The declaration text from `from` to its terminator (`;`, `=`, `{`), or
/// "" when a `(` intervenes first (a function, not a variable) or no
/// terminator exists. SCION_* annotation macros are stripped before the
/// paren test so annotated members still classify as variables; template
/// argument lists are skipped so their punctuation cannot misfire.
inline std::string decl_before_terminator(std::string_view text,
                                          std::size_t from) {
  static const std::regex kAnnotation{R"(SCION_[A-Z_]+\s*\([^()]*\))"};
  static const std::regex kBareAnnotation{R"(\bSCION_[A-Z_]+\b)"};
  static const std::regex kOperator{R"(\boperator\b)"};
  std::string s =
      std::regex_replace(std::string{text.substr(from)}, kAnnotation, " ");
  s = std::regex_replace(s, kBareAnnotation, " ");
  if (std::regex_search(s, kOperator)) return "";  // operator=: a function
  int angle = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (angle > 0) continue;
    if (c == '(') return "";
    if (c == ';' || c == '{') return s.substr(0, i);
    if (c == '=' && (i + 1 >= s.size() || s[i + 1] != '=')) {
      return s.substr(0, i);
    }
  }
  return "";
}

/// Owned-mutex member test for the unguarded-shared rule: a non-pointer,
/// non-reference mutex member is what declares the class's lock protocol.
inline bool is_mutex_member(std::string_view decl) {
  static const std::regex kMutex{
      R"(\b(?:std::)?(?:mutex|timed_mutex|recursive_mutex|shared_mutex)\b)"
      R"(|\b(?:util::)?Mutex\b)"};
  if (!std::regex_search(std::string{decl}, kMutex)) return false;
  return decl.find('&') == std::string_view::npos &&
         decl.find('*') == std::string_view::npos;
}

/// Synchronization-primitive members are themselves exempt from
/// unguarded-shared (they ARE the guard).
inline bool is_sync_member(std::string_view decl) {
  static const std::regex kSync{
      R"(\b(?:std::)?(?:mutex|timed_mutex|recursive_mutex|shared_mutex)"
      R"(|condition_variable(?:_any)?)\b|\b(?:util::)?(?:Mutex|CondVar)\b)"};
  return std::regex_search(std::string{decl}, kSync);
}

}  // namespace state_detail

inline std::vector<Finding> StateAnalyzer::check() {
  std::vector<Finding> findings;
  counts_.clear();
  for (const auto& [name, content] : files_) {
    scan_file(name, content, findings);
  }
  return findings;
}

inline void StateAnalyzer::scan_file(const std::string& name,
                                     const std::string& content,
                                     std::vector<Finding>& findings) {
  using detail::allowed_rules;
  using detail::disabled_condition;
  using detail::is_pp;
  using detail::split_lines;
  using namespace state_detail;

  // static / thread_local declarator, any scope.
  static const std::regex kStatic{R"(\b(static|thread_local)\b)"};
  // Namespace-scope declaration: optional specifier run, a type token
  // (qualified id, optional template arguments), declarator punctuation,
  // then the variable name and an initializer or `;`.
  static const std::regex kNsDecl{
      R"(^\s*((?:(?:inline|extern|static|thread_local|constinit|constexpr|const|mutable|volatile)\s+)*))"
      R"((?:::)?[A-Za-z_][\w:]*(?:\s*<[^;]*>)?(?:\s*[*&]|\s)+)"
      R"([A-Za-z_]\w*(?:\[\w*\])?\s*(?:=[^=]|\{|;))"};

  const auto allowlisted = [&](const std::string& var) {
    for (const auto& [file_suffix, entry] : allowlist_) {
      if (entry == var && name.size() >= file_suffix.size() &&
          name.compare(name.size() - file_suffix.size(), file_suffix.size(),
                       file_suffix) == 0) {
        return true;
      }
    }
    return false;
  };

  const std::vector<std::string> lines = split_lines(content);

  // Scope stack; the top level is namespace scope. Class scopes collect the
  // member declarations at their immediate depth and are evaluated for
  // unguarded-shared when the scope closes (the mutex member may be
  // declared after the members it guards).
  struct ClassScope {
    int body_depth{0};
    struct Member {
      int line{0};
      std::string decl;       // joined declaration text, annotations stripped
      bool annotated{false};  // carried SCION_GUARDED_BY / SCION_PT_GUARDED_BY
      bool allowed{false};    // simlint:allow(unguarded-shared)
    };
    std::vector<Member> members;
    bool owns_mutex{false};
  };
  std::vector<ScopeKind> scopes{ScopeKind::kNamespace};
  std::vector<ClassScope> class_scopes;
  int depth = 0;

  LineScanState lex;
  std::vector<std::string> carried_allow;
  int disabled_depth = 0;  // inside `#if 0` / `#if false`
  int paren_depth = 0;     // unclosed `(` from earlier lines

  // Member declaration joined across continuation lines (wrapped before
  // its `;`, e.g. a long type with SCION_GUARDED_BY on the next line).
  std::string pending_member;
  int pending_line = 0;
  bool pending_annotated = false;
  bool pending_allowed = false;
  int pending_joined = 0;
  const auto reset_pending = [&] {
    pending_member.clear();
    pending_line = 0;
    pending_annotated = false;
    pending_allowed = false;
    pending_joined = 0;
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& raw = lines[i];
    std::vector<std::string> allow = allowed_rules(raw);
    std::vector<std::string> effective_allow = carried_allow;
    effective_allow.insert(effective_allow.end(), allow.begin(), allow.end());
    carried_allow = std::move(allow);

    const std::string code_str = strip_noncode(raw, lex);

    // `#if 0` discipline, same as the include-graph analyzer: disabled
    // regions contribute nothing to the inventory.
    std::string cond;
    if (disabled_depth > 0) {
      if (is_pp(code_str, "if") || is_pp(code_str, "ifdef") ||
          is_pp(code_str, "ifndef")) {
        ++disabled_depth;
      } else if (is_pp(code_str, "endif")) {
        --disabled_depth;
      } else if (disabled_depth == 1 &&
                 (is_pp(code_str, "else") || is_pp(code_str, "elif"))) {
        disabled_depth = 0;
      }
      continue;
    }
    if (is_pp(code_str, "if", &cond) && disabled_condition(cond)) {
      disabled_depth = 1;
      continue;
    }

    const bool allowed_mutable_global =
        std::find(effective_allow.begin(), effective_allow.end(),
                  "mutable-global") != effective_allow.end();
    const bool allowed_unguarded =
        std::find(effective_allow.begin(), effective_allow.end(),
                  "unguarded-shared") != effective_allow.end();

    const std::string word = first_word(code_str);
    const bool keyword = keyword_line(word);
    std::size_t ws = 0;
    while (ws < code_str.size() &&
           std::isspace(static_cast<unsigned char>(code_str[ws]))) {
      ++ws;
    }
    const bool pp_line = ws < code_str.size() && code_str[ws] == '#';

    // Lines inside an unclosed parenthesis (a wrapped parameter or argument
    // list) are continuations, never declarations. Updated after the line's
    // detections so the opening line itself still gets scanned.
    const bool in_parens = paren_depth > 0;
    if (!pp_line) {
      for (const char c : code_str) {
        if (c == '(') ++paren_depth;
        if (c == ')' && paren_depth > 0) --paren_depth;
      }
    }

    const auto report_mutable_global = [&](const std::string& var,
                                           const char* what) {
      ++counts_[name]["mutable-global"];
      if (allowed_mutable_global || allowlisted(var)) return;
      findings.push_back(Finding{
          name, static_cast<int>(i + 1), "mutable-global",
          std::string{what} + " `" + var +
              "` is shared mutable state; make it const, move it into an "
              "owning object, or justify it with a "
              "simlint:allow(mutable-global) comment"});
    };

    // --- mutable-global, form 1: static / thread_local at any scope ------
    // Runs on #define lines too, so macro-generated statics are caught.
    std::smatch sm;
    if (!in_parens && !keyword && std::regex_search(code_str, sm, kStatic)) {
      const std::string decl = decl_before_terminator(
          code_str, static_cast<std::size_t>(sm.position(0)));
      if (!decl.empty() && !has_const_token(decl) &&
          decl.find("extern") == std::string::npos) {
        const std::string var = last_identifier(decl);
        if (!var.empty()) {
          report_mutable_global(var, sm[1].str() == "thread_local"
                                         ? "thread_local variable"
                                         : "static variable");
        }
      }
    } else if (!in_parens && !pp_line && !keyword && !word.empty() &&
               scopes.back() == ScopeKind::kNamespace &&
               std::regex_search(code_str, sm, kNsDecl)) {
      // --- mutable-global, form 2: plain namespace-scope declaration -----
      const std::string specifiers = sm[1].str();
      const std::string decl = decl_before_terminator(code_str, 0);
      if (!decl.empty() && !has_const_token(decl) &&
          specifiers.find("extern") == std::string::npos) {
        const std::string var = last_identifier(decl);
        if (!var.empty()) {
          report_mutable_global(var, "namespace-scope variable");
        }
      }
    }

    // --- unguarded-shared: collect member declarations of class scopes ---
    const bool at_member_depth =
        !in_parens && !pp_line && scopes.back() == ScopeKind::kClass &&
        !class_scopes.empty() && depth == class_scopes.back().body_depth;
    if (at_member_depth && !keyword) {
      const std::string text = pending_member.empty()
                                   ? code_str
                                   : pending_member + " " + code_str;
      const bool annotated =
          pending_annotated ||
          code_str.find("SCION_GUARDED_BY(") != std::string::npos ||
          code_str.find("SCION_PT_GUARDED_BY(") != std::string::npos;
      const bool line_allowed = pending_allowed || allowed_unguarded;
      const int decl_line =
          pending_member.empty() ? static_cast<int>(i + 1) : pending_line;
      const bool terminated = text.find(';') != std::string::npos ||
                              text.find('{') != std::string::npos ||
                              text.find('(') != std::string::npos;
      if (!terminated && !first_word(text).empty() && pending_joined < 4) {
        pending_member = text;
        pending_line = decl_line;
        pending_annotated = annotated;
        pending_allowed = line_allowed;
        ++pending_joined;
      } else {
        reset_pending();
        const std::string decl = decl_before_terminator(text, 0);
        if (!decl.empty() && !last_identifier(decl).empty()) {
          ClassScope& cls = class_scopes.back();
          if (is_mutex_member(decl)) cls.owns_mutex = true;
          cls.members.push_back(
              ClassScope::Member{decl_line, decl, annotated, line_allowed});
        }
      }
    } else if (!at_member_depth) {
      reset_pending();
    }

    // --- brace tracking with lexical scope classification -----------------
    if (pp_line) continue;  // #define bodies don't open real scopes
    std::size_t seg_start = 0;
    for (std::size_t k = 0; k < code_str.size(); ++k) {
      const char c = code_str[k];
      if (c == ';') seg_start = k + 1;
      if (c == '{') {
        const std::string_view before{code_str.data() + seg_start,
                                      k - seg_start};
        const ScopeKind kind = classify_open(before);
        scopes.push_back(kind);
        ++depth;
        if (kind == ScopeKind::kClass) {
          class_scopes.push_back(ClassScope{depth, {}, false});
        }
        seg_start = k + 1;
      } else if (c == '}') {
        if (scopes.size() > 1) {
          const ScopeKind kind = scopes.back();
          if (kind == ScopeKind::kClass && !class_scopes.empty() &&
              class_scopes.back().body_depth == depth) {
            // Closing class: every mutable member of a mutex-owning class
            // must be annotated or allowed.
            const ClassScope& cls = class_scopes.back();
            if (cls.owns_mutex) {
              for (const auto& m : cls.members) {
                if (is_sync_member(m.decl)) continue;
                if (has_const_token(m.decl)) continue;
                if (m.annotated) {
                  ++counts_[name]["guarded-member"];
                  continue;
                }
                ++counts_[name]["unguarded-shared"];
                if (m.allowed) continue;
                findings.push_back(Finding{
                    name, m.line, "unguarded-shared",
                    "mutable member `" + last_identifier(m.decl) +
                        "` of a mutex-owning class has no SCION_GUARDED_BY "
                        "annotation; declare its lock or justify with a "
                        "simlint:allow(unguarded-shared) comment"});
              }
            }
            class_scopes.pop_back();
          }
          scopes.pop_back();
          --depth;
        }
        seg_start = k + 1;
      }
    }
  }
}

inline std::string StateAnalyzer::state_report_json() const {
  static const std::vector<std::string> kRules{
      "guarded-member", "mutable-global", "unguarded-shared"};
  std::map<std::string, int> totals;
  for (const auto& [file, rules] : counts_) {
    for (const auto& [rule, n] : rules) totals[rule] += n;
  }

  std::string out;
  out += "{\n  \"version\": 1,\n  \"files\": [\n";
  bool first_file = true;
  for (const auto& [file, rules] : counts_) {
    if (!first_file) out += ",\n";
    first_file = false;
    out += "    {\"file\": \"";
    detail::json_escape_into(out, file);
    out += "\", \"counts\": {";
    bool first_rule = true;
    for (const std::string& rule : kRules) {
      const auto it = rules.find(rule);
      if (!first_rule) out += ", ";
      first_rule = false;
      out += "\"" + rule +
             "\": " + std::to_string(it == rules.end() ? 0 : it->second);
    }
    out += "}}";
  }
  out += "\n  ],\n  \"totals\": {";
  bool first_rule = true;
  for (const std::string& rule : kRules) {
    if (!first_rule) out += ", ";
    first_rule = false;
    const auto it = totals.find(rule);
    out += "\"" + rule +
           "\": " + std::to_string(it == totals.end() ? 0 : it->second);
  }
  out += "}\n}\n";
  return out;
}

inline std::vector<Finding> StateAnalyzer::diff_baseline(
    const std::string& baseline_json) const {
  // The baseline is a prior state_report_json(): a fixed shape we emitted
  // ourselves, so a targeted scan (not a general JSON parser) is reliable.
  static const std::regex kFileEntry{
      R"re("file":\s*"((?:[^"\\]|\\.)*)"[^{}]*"counts":\s*\{([^}]*)\})re"};
  static const std::regex kRuleCount{R"re("([a-z-]+)":\s*(\d+))re"};

  std::map<std::string, std::map<std::string, int>> base;
  for (std::sregex_iterator it{baseline_json.begin(), baseline_json.end(),
                               kFileEntry},
       end;
       it != end; ++it) {
    const std::string file = (*it)[1].str();
    // Un-escape the two characters json_escape_into escapes.
    std::string unescaped;
    for (std::size_t i = 0; i < file.size(); ++i) {
      if (file[i] == '\\' && i + 1 < file.size()) ++i;
      unescaped.push_back(file[i]);
    }
    const std::string counts = (*it)[2].str();
    for (std::sregex_iterator rt{counts.begin(), counts.end(), kRuleCount},
         rend;
         rt != rend; ++rt) {
      base[unescaped][(*rt)[1].str()] = std::stoi((*rt)[2].str());
    }
  }

  std::vector<Finding> findings;
  for (const auto& [file, rules] : counts_) {
    const auto bit = base.find(file);
    for (const auto& [rule, n] : rules) {
      if (rule == "guarded-member") continue;  // more annotations is progress
      int baseline = 0;
      if (bit != base.end()) {
        const auto rit = bit->second.find(rule);
        if (rit != bit->second.end()) baseline = rit->second;
      }
      if (n > baseline) {
        findings.push_back(Finding{
            file, 0, "state-regression",
            "shared-state regression in " + file + ": " + rule + " count " +
                std::to_string(n) + " exceeds baseline " +
                std::to_string(baseline) +
                " (tools/state_baseline.json); remove the new shared state "
                "or annotate it and regenerate the baseline deliberately "
                "(see DESIGN.md, Concurrency discipline)"});
      }
    }
  }
  return findings;
}

}  // namespace scion::lint
