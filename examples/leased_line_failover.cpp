// Leased-line replacement with multi-path fast failover — the deployment
// use case of Section 3.1: a bank connects N branches to K data centers
// over SCION instead of N*K leased lines, and link failures are masked by
// immediately switching to an alternative path (SCMP revocation -> path
// manager failover) instead of waiting for routing to reconverge.
//
//   ./examples/leased_line_failover
//
// The example resolves multi-path sets for every branch/data-center pair,
// then injects link failures and measures how many pairs survive each
// failure without losing connectivity, and how often failover was needed.
#include <cstdio>
#include <map>
#include <vector>

#include "scion/control_plane_sim.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

using namespace scion;

int main() {
  // One ISD per region; branches and data centers are leaf ASes.
  topo::MultiIsdConfig topology_config;
  topology_config.n_isds = 2;
  topology_config.cores_per_isd = 3;
  topology_config.ases_per_isd = 14;
  topology_config.seed = 77;
  const topo::Topology world = topo::generate_multi_isd(topology_config);

  svc::ControlPlaneSimConfig config;
  config.sim_duration = util::Duration::minutes(30);
  config.lookups_per_second = 0.0;
  config.link_failures_per_hour = 0.0;
  svc::ControlPlaneSim control_plane{world, config};
  control_plane.run();

  // Pick branches (first ISD) and data centers (second ISD).
  std::vector<topo::AsIndex> branches, data_centers;
  for (const topo::AsIndex leaf : control_plane.leaves()) {
    if (world.as_id(leaf).isd() == topo::IsdId{1} && branches.size() < 4) {
      branches.push_back(leaf);
    } else if (world.as_id(leaf).isd() == topo::IsdId{2} && data_centers.size() < 2) {
      data_centers.push_back(leaf);
    }
  }
  std::printf("connecting %zu branches to %zu data centers "
              "(%zu SCION attachments replace %zu leased lines)\n",
              branches.size(), data_centers.size(),
              branches.size() + data_centers.size(),
              branches.size() * data_centers.size());

  // Each branch/DC pair gets a PathManager with its multi-path set.
  std::map<std::pair<topo::AsIndex, topo::AsIndex>, svc::PathManager> flows;
  for (const topo::AsIndex branch : branches) {
    for (const topo::AsIndex dc : data_centers) {
      auto paths = control_plane.resolve_paths(branch, dc);
      flows[{branch, dc}].set_paths(std::move(paths));
    }
  }
  std::size_t multi_path_pairs = 0;
  for (const auto& [pair, manager] : flows) {
    std::printf("  %s -> %s: %zu paths\n",
                world.as_id(pair.first).to_string().c_str(),
                world.as_id(pair.second).to_string().c_str(),
                manager.total_paths());
    multi_path_pairs += manager.total_paths() >= 2;
  }

  // Failure drill: fail random links one after another (no repair) and
  // watch connectivity. A pair survives as long as one path avoids all
  // failed links; failover is immediate upon the SCMP revocation.
  util::Rng rng{99};
  std::size_t failures = 0;
  std::size_t failover_events = 0;
  std::printf("\nfailure drill (cumulative link failures):\n");
  for (int round = 0; round < 8; ++round) {
    // Fail a random currently-up link.
    topo::LinkIndex victim = topo::kInvalidLinkIndex;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto l =
          static_cast<topo::LinkIndex>(rng.index(world.link_count()));
      if (control_plane.link_up(l)) {
        victim = l;
        break;
      }
    }
    if (victim == topo::kInvalidLinkIndex) break;
    control_plane.fail_link(victim, util::Duration::hours(24));
    ++failures;

    std::size_t connected = 0;
    for (auto& [pair, manager] : flows) {
      const std::uint64_t before = manager.failovers();
      manager.notify_revocation(victim);  // SCMP fan-out
      failover_events += manager.failovers() - before;
      connected += manager.active() != nullptr;
    }
    std::printf("  after %zu failures: %zu/%zu pairs connected "
                "(link %s-%s down)\n",
                failures, connected, flows.size(),
                world.as_id(world.link(victim).a).to_string().c_str(),
                world.as_id(world.link(victim).b).to_string().c_str());
  }

  std::printf("\n%zu/%zu pairs had native multi-path; %zu fast failovers "
              "performed, zero reconvergence waits\n",
              multi_path_pairs, flows.size(), failover_events);

  // Sanity: every still-active path must actually forward end to end over
  // the surviving links.
  for (auto& [pair, manager] : flows) {
    const svc::EndToEndPath* active = manager.active();
    if (active == nullptr) continue;
    const svc::ForwardResult result = control_plane.dataplane().forward(
        *active, [&](topo::LinkIndex l) { return control_plane.link_up(l); });
    if (!result.delivered) {
      std::printf("BUG: active path for %s -> %s does not forward: %s\n",
                  world.as_id(pair.first).to_string().c_str(),
                  world.as_id(pair.second).to_string().c_str(),
                  result.error.c_str());
      return 1;
    }
  }
  std::printf("all active paths verified end-to-end on the data plane\n");
  return 0;
}
