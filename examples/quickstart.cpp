// Quickstart: build the Figure-1 style SCION network (3 ISDs), run both
// levels of beaconing plus the path-server machinery, resolve end-to-end
// paths between two leaf ASes in different ISDs, and forward a packet.
//
//   ./examples/quickstart
//
// This walks the whole public API surface: topology generation, the
// control-plane simulation, on-demand path lookup, segment combination
// (up + core + down, shortcuts, peering), and data-plane verification.
#include <cstdio>

#include "scion/control_plane_sim.hpp"
#include "topology/generator.hpp"
#include "topology/io.hpp"

using namespace scion;

int main() {
  // A small world shaped like the paper's Figure 1: three ISDs, each with
  // 2-3 core ASes and a customer hierarchy below them.
  topo::MultiIsdConfig topology_config;
  topology_config.n_isds = 3;
  topology_config.cores_per_isd = 2;
  topology_config.ases_per_isd = 8;
  topology_config.seed = 2026;
  const topo::Topology world = topo::generate_multi_isd(topology_config);

  std::printf("SCION network: %zu ASes, %zu inter-AS links\n",
              world.as_count(), world.link_count());

  // Run the control plane: core beaconing among the ISD cores, intra-ISD
  // beaconing down the customer hierarchies, registrations, path servers.
  svc::ControlPlaneSimConfig config;
  config.sim_duration = util::Duration::minutes(30);
  config.lookups_per_second = 0.0;     // we drive lookups ourselves below
  config.link_failures_per_hour = 0.0;
  svc::ControlPlaneSim control_plane{world, config};
  control_plane.run();

  // Pick two leaf ASes in different ISDs.
  const auto& leaves = control_plane.leaves();
  topo::AsIndex src = leaves.front();
  topo::AsIndex dst = src;
  for (const topo::AsIndex leaf : leaves) {
    if (world.as_id(leaf).isd() != world.as_id(src).isd()) {
      dst = leaf;
      break;
    }
  }
  std::printf("resolving paths %s -> %s\n",
              world.as_id(src).to_string().c_str(),
              world.as_id(dst).to_string().c_str());

  // Endpoint-visible path resolution: up-segments from the local path
  // server, core-/down-segments fetched (and cached) across the network.
  const std::vector<svc::EndToEndPath> paths =
      control_plane.resolve_paths(src, dst);
  std::printf("found %zu end-to-end paths:\n", paths.size());
  for (const svc::EndToEndPath& path : paths) {
    // Render hops with the interface used on each side, so parallel links
    // between the same AS pair are distinguishable.
    std::string rendered = world.as_id(path.ases[0]).to_string();
    for (std::size_t i = 0; i < path.links.size(); ++i) {
      const topo::LinkIndex l = path.links[i];
      char hop[64];
      std::snprintf(hop, sizeof hop, " %u>%u %s",
                    world.interface_of(l, path.ases[i]).value(),
                    world.interface_of(l, path.ases[i + 1]).value(),
                    world.as_id(path.ases[i + 1]).to_string().c_str());
      rendered += hop;
    }
    std::printf("  [%-12s] %zu hops, %3llu header bytes: %s\n",
                to_string(path.kind), path.length(),
                static_cast<unsigned long long>(
                    svc::packet_header_bytes(path).value()),
                rendered.c_str());
  }
  if (paths.empty()) {
    std::printf("no path found — beaconing has not converged?\n");
    return 1;
  }

  // Forward a packet along the best path, verifying every hop-field MAC.
  const svc::DataPlane& dataplane = control_plane.dataplane();
  const svc::ForwardResult result = dataplane.forward(
      paths.front(), [&](topo::LinkIndex l) { return control_plane.link_up(l); });
  std::printf("packet on best path: %s (%zu links traversed)\n",
              result.delivered ? "delivered" : result.error.c_str(),
              result.links_traversed);

  // Show what the control plane cost while we were at it.
  control_plane.ledger().print("control-plane traffic so far",
                               config.sim_duration, world.as_count());
  return result.delivered ? 0 : 1;
}
