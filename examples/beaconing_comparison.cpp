// The paper's headline result in miniature: run the baseline and the
// path-diversity-based path construction algorithms on the same core
// network and compare (a) control-plane overhead and (b) failure resilience
// of the disseminated paths against the optimum.
//
//   ./examples/beaconing_comparison [--core-ases=N] [--minutes=M]
#include <cstdio>

#include "analysis/path_quality.hpp"
#include "core/beaconing_sim.hpp"
#include "experiments/scale.hpp"
#include "util/flags.hpp"

using namespace scion;

namespace {

struct RunSummary {
  util::Bytes bytes{};
  std::uint64_t pcbs{0};
  double avg_paths_per_pair{0.0};
  double capacity_fraction{0.0};
};

RunSummary run(const topo::Topology& core, ctrl::AlgorithmKind algorithm,
               util::Duration duration, std::uint64_t seed) {
  ctrl::BeaconingSimConfig config;
  config.server.algorithm = algorithm;
  config.server.compute_crypto = false;
  if (algorithm == ctrl::AlgorithmKind::kDiversity) {
    config.server.store_policy = ctrl::StorePolicy::kDiversityAware;
  }
  config.sim_duration = duration;
  config.seed = seed;
  ctrl::BeaconingSim sim{core, config};
  sim.run();

  RunSummary summary;
  summary.bytes = sim.total_bytes();
  summary.pcbs = sim.total_pcbs_sent();

  analysis::QualityEvaluator evaluator{core};
  util::Rng rng{seed ^ 0xC0FFEE};
  double achieved = 0, optimal = 0, paths = 0;
  const std::size_t pairs = 60;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto a = static_cast<topo::AsIndex>(rng.index(core.as_count()));
    const auto b = static_cast<topo::AsIndex>(rng.index(core.as_count()));
    if (a == b) continue;
    auto fwd = sim.paths_at(a, core.as_id(b));
    auto rev = sim.paths_at(b, core.as_id(a));
    paths += static_cast<double>(fwd.size() + rev.size());
    fwd.insert(fwd.end(), rev.begin(), rev.end());
    achieved += evaluator.of_paths(fwd, a, b);
    optimal += evaluator.optimal(a, b);
  }
  summary.avg_paths_per_pair = paths / static_cast<double>(pairs);
  summary.capacity_fraction = optimal > 0 ? achieved / optimal : 0;
  return summary;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags{argc, argv};
  exp::Scale scale = exp::Scale::from_flags(flags);
  scale.core_ases = static_cast<std::size_t>(
      flags.get_int("core-ases", static_cast<std::int64_t>(scale.core_ases)));
  const auto duration = util::Duration::minutes(flags.get_int(
      "minutes", static_cast<std::int64_t>(scale.quality_duration.as_minutes())));

  const topo::Topology internet = exp::build_internet(scale);
  const exp::CoreNetworks nets = exp::build_core_networks(scale, internet);
  std::printf("core network: %zu core ASes, %zu inter-AS links, %s of "
              "simulated beaconing\n\n",
              nets.scion_view.as_count(), nets.scion_view.link_count(),
              duration.to_string().c_str());

  const RunSummary baseline =
      run(nets.scion_view, ctrl::AlgorithmKind::kBaseline, duration, scale.seed);
  const RunSummary diversity = run(nets.scion_view,
                                   ctrl::AlgorithmKind::kDiversity, duration,
                                   scale.seed);

  std::printf("%-26s %16s %16s\n", "", "baseline", "diversity-based");
  std::printf("%-26s %16llu %16llu\n", "PCBs sent",
              static_cast<unsigned long long>(baseline.pcbs),
              static_cast<unsigned long long>(diversity.pcbs));
  std::printf("%-26s %16llu %16llu\n", "control-plane bytes",
              static_cast<unsigned long long>(baseline.bytes.value()),
              static_cast<unsigned long long>(diversity.bytes.value()));
  std::printf("%-26s %16.1f %16.1f\n", "paths stored per pair",
              baseline.avg_paths_per_pair, diversity.avg_paths_per_pair);
  std::printf("%-26s %15.1f%% %15.1f%%\n", "capacity vs optimal",
              100 * baseline.capacity_fraction,
              100 * diversity.capacity_fraction);
  std::printf("\noverhead reduction: %.1fx fewer bytes with the "
              "path-diversity-based algorithm\n",
              static_cast<double>(baseline.bytes.value()) /
                  static_cast<double>(diversity.bytes.value()));
  return 0;
}
