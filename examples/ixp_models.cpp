// IXP deployment models (Section 3.5, Figure 4): the traditional "big
// switch" versus exposing the IXP's internal multi-site topology as SCION
// ASes, plus the ISP connection models of Figure 2.
//
//   ./examples/ixp_models
//
// Prints (1) per-member-pair resilience for the two IXP fabrics and (2)
// availability / goodput / framing numbers for the three inter-ISP link
// deployment models.
#include <cstdio>

#include "scion/deployment.hpp"
#include "util/stats.hpp"

using namespace scion;

int main() {
  // --- IXP fabrics ----------------------------------------------------------
  svc::IxpConfig config;
  config.members = 6;
  config.sites = 4;
  config.links_per_site_pair = 2;
  config.member_homing = 2;

  const topo::Topology big =
      svc::build_ixp_fabric(svc::IxpModel::kBigSwitch, config);
  const topo::Topology exposed =
      svc::build_ixp_fabric(svc::IxpModel::kExposedTopology, config);

  std::printf("IXP with %zu members; enhanced model: %zu sites, %zu links "
              "per site pair, members homed onto %zu sites\n\n",
              config.members, config.sites, config.links_per_site_pair,
              config.member_homing);
  std::printf("min #failures disconnecting a member pair:\n");
  std::printf("  %-14s %-12s %-18s\n", "pair", "big switch", "exposed topology");
  util::OnlineStats big_stats, exposed_stats;
  for (topo::AsIndex a = 0; a < config.members; ++a) {
    for (topo::AsIndex b = a + 1; b < config.members; ++b) {
      const int cut_big = svc::ixp_member_min_cut(big, a, b);
      const int cut_exposed = svc::ixp_member_min_cut(exposed, a, b);
      big_stats.add(cut_big);
      exposed_stats.add(cut_exposed);
      if (a == 0) {
        std::printf("  %s-%-10s %-12d %-18d\n",
                    big.as_id(a).to_string().c_str(),
                    big.as_id(b).to_string().c_str(), cut_big, cut_exposed);
      }
    }
  }
  std::printf("  %-14s %-12.2f %-18.2f\n", "average", big_stats.mean(),
              exposed_stats.mean());
  std::printf("exposing the fabric multiplies member-pair resilience by "
              "%.1fx and lets endpoints pick per-application paths through "
              "the IXP\n\n",
              exposed_stats.mean() / big_stats.mean());

  // --- ISP connection models (Fig. 2) ----------------------------------------
  std::printf("inter-ISP connection models (10 Gbps port, 1%% fiber / 2%% IP "
              "underlay failure, 1500 B packets, hostile IP load 90%%):\n");
  std::printf("  %-22s %-14s %-14s %-16s\n", "model", "availability",
              "goodput Mbps", "bytes per pkt");
  for (const auto model : {svc::InterIspModel::kNativeCrossConnect,
                           svc::InterIspModel::kRouterOnAStick,
                           svc::InterIspModel::kRedundant}) {
    svc::DeployedLinkConfig link_config;
    link_config.model = model;
    link_config.capacity_mbps = 10'000;
    link_config.scion_min_share = 0.5;
    const svc::DeployedLink link{link_config};
    std::printf("  %-22s %-14.4f %-14.0f %-16zu\n", to_string(model),
                link.availability(0.01, 0.02),
                link.scion_goodput_mbps(8'000, 0.9),
                link.wire_bytes(util::Bytes{1500}).value());
  }
  std::printf("\nwithout a queuing discipline, hostile IP traffic crowds "
              "SCION out of a shared link entirely:\n");
  svc::DeployedLinkConfig unprotected;
  unprotected.model = svc::InterIspModel::kRouterOnAStick;
  unprotected.capacity_mbps = 10'000;
  unprotected.queuing_discipline = false;
  std::printf("  router-on-a-stick, no QD, IP load 100%%: goodput %.0f Mbps\n",
              svc::DeployedLink{unprotected}.scion_goodput_mbps(8'000, 1.0));
  return 0;
}
