// SIG-based end-domain deployment (Section 3.4, cases b and c): legacy IP
// hosts opt into SCION through a SCION-IP Gateway that consults the ASMap
// table, encapsulates IP packets in SCION, and fails over on revocations —
// no changes to hosts or applications.
//
//   ./examples/sig_gateway
//
// Two deployments are shown on the same network: a customer-premise SIG in
// the branch's own AS (case b) and a carrier-grade SIG in the provider AS
// serving a SCION-unaware customer (case c).
#include <cstdio>

#include "scion/sig.hpp"
#include "topology/generator.hpp"

using namespace scion;

namespace {

void print_stats(const char* name, const svc::SigStats& stats) {
  std::printf("%s: %llu packets in, %llu delivered, %llu no-mapping, "
              "%llu no-path, %.2fx wire expansion, %llu path resolutions, "
              "%llu failovers\n",
              name, static_cast<unsigned long long>(stats.packets_in),
              static_cast<unsigned long long>(stats.packets_delivered),
              static_cast<unsigned long long>(stats.packets_dropped_no_mapping),
              static_cast<unsigned long long>(stats.packets_dropped_no_path),
              stats.bytes_in > util::Bytes::zero()
                  ? static_cast<double>(stats.bytes_on_wire.value()) /
                        static_cast<double>(stats.bytes_in.value())
                  : 0.0,
              static_cast<unsigned long long>(stats.path_resolutions),
              static_cast<unsigned long long>(stats.failovers));
}

}  // namespace

int main() {
  topo::MultiIsdConfig topology_config;
  topology_config.n_isds = 2;
  topology_config.cores_per_isd = 2;
  topology_config.ases_per_isd = 10;
  topology_config.seed = 404;
  const topo::Topology world = topo::generate_multi_isd(topology_config);

  svc::ControlPlaneSimConfig config;
  config.sim_duration = util::Duration::minutes(30);
  config.lookups_per_second = 0.0;
  config.link_failures_per_hour = 0.0;
  svc::ControlPlaneSim control_plane{world, config};
  control_plane.run();

  // Pick roles: branch (ISD 1 leaf), data center (ISD 2 leaf), and the
  // branch's provider (for the carrier-grade case).
  topo::AsIndex branch = topo::kInvalidAsIndex, dc = topo::kInvalidAsIndex;
  for (const topo::AsIndex leaf : control_plane.leaves()) {
    if (world.as_id(leaf).isd() == topo::IsdId{1} && branch == topo::kInvalidAsIndex) {
      branch = leaf;
    }
    if (world.as_id(leaf).isd() == topo::IsdId{2}) dc = leaf;
  }
  const topo::AsIndex provider =
      world.neighbor(world.provider_links(branch).front(), branch);
  std::printf("branch %s (provider %s), data center %s\n",
              world.as_id(branch).to_string().c_str(),
              world.as_id(provider).to_string().c_str(),
              world.as_id(dc).to_string().c_str());

  // Case b: CPE-deployed SIG in the branch's own AS.
  svc::Sig cpe_sig{control_plane, branch};
  cpe_sig.asmap().add(*svc::IpPrefix::parse("10.2.0.0/16"), world.as_id(dc));
  cpe_sig.asmap().add(*svc::IpPrefix::parse("10.1.0.0/16"),
                      world.as_id(branch));

  // Case c: carrier-grade SIG at the provider, customers stay unaware.
  svc::Sig cgsig{control_plane, provider};
  cgsig.asmap().add(*svc::IpPrefix::parse("10.2.0.0/16"), world.as_id(dc));

  // Legacy traffic: a mix of intra-site, data-center, and unmapped flows.
  const std::uint32_t dc_ip = svc::IpPrefix::parse("10.2.7.1")->address;
  const std::uint32_t local_ip = svc::IpPrefix::parse("10.1.0.4")->address;
  const std::uint32_t internet_ip = svc::IpPrefix::parse("93.184.216.34")->address;
  for (int i = 0; i < 500; ++i) {
    cpe_sig.send_ip_packet(dc_ip, util::Bytes{1200});
    cgsig.send_ip_packet(dc_ip, util::Bytes{1200});
    if (i % 5 == 0) cpe_sig.send_ip_packet(local_ip, util::Bytes{300});
    if (i % 50 == 0) cpe_sig.send_ip_packet(internet_ip, util::Bytes{80});
  }

  // A mid-run link failure: the SIGs fail over on the SCMP revocation
  // without any host noticing (beyond the masked blip).
  for (topo::LinkIndex l : world.provider_links(dc)) {
    if (control_plane.link_up(l)) {
      std::printf("failing link %s-%s ...\n",
                  world.as_id(world.link(l).a).to_string().c_str(),
                  world.as_id(world.link(l).b).to_string().c_str());
      control_plane.fail_link(l, util::Duration::minutes(5));
      cpe_sig.handle_revocation(l);
      cgsig.handle_revocation(l);
      break;
    }
  }
  for (int i = 0; i < 200; ++i) {
    cpe_sig.send_ip_packet(dc_ip, util::Bytes{1200});
    cgsig.send_ip_packet(dc_ip, util::Bytes{1200});
  }

  print_stats("CPE SIG (case b)  ", cpe_sig.stats());
  print_stats("carrier SIG (case c)", cgsig.stats());

  const bool ok = cpe_sig.stats().packets_delivered > 500 &&
                  cgsig.stats().packets_delivered > 500;
  std::printf("%s\n", ok ? "legacy hosts kept connectivity throughout"
                         : "UNEXPECTED: traffic was lost");
  return ok ? 0 : 1;
}
