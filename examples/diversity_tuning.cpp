// Fitting the diversity algorithm's parameters for a topology, as Section
// 4.2 prescribes: a coarse grid search with exponentially spaced values for
// alpha / beta / gamma, followed by a linear refinement around the winner.
//
//   ./examples/diversity_tuning [--core-ases=N] [--pairs=P]
#include <cstdio>

#include "core/grid_search.hpp"
#include "experiments/scale.hpp"
#include "util/flags.hpp"

using namespace scion;

int main(int argc, char** argv) {
  util::Flags flags{argc, argv};
  exp::Scale scale = exp::Scale::from_flags(flags);
  // Grid search evaluates dozens of points; keep each run small.
  scale.core_ases =
      static_cast<std::size_t>(flags.get_int("core-ases", 24));
  scale.internet_ases = std::max<std::size_t>(scale.internet_ases, 300);

  const topo::Topology internet = exp::build_internet(scale);
  const exp::CoreNetworks nets = exp::build_core_networks(scale, internet);
  std::printf("tuning on a %zu-AS core network (%zu links)\n",
              nets.scion_view.as_count(), nets.scion_view.link_count());

  ctrl::GridSearchConfig config;
  config.sim_duration = util::Duration::minutes(
      flags.get_int("minutes", 90));
  config.sampled_pairs =
      static_cast<std::size_t>(flags.get_int("pairs", 40));
  config.seed = scale.seed;

  const ctrl::GridSearchResult result =
      ctrl::grid_search_diversity_params(nets.scion_view, config);

  std::printf("\nevaluated %zu parameter points "
              "(baseline reference: %llu bytes)\n",
              result.evaluated.size(),
              static_cast<unsigned long long>(result.baseline_bytes.value()));
  std::printf("  %-7s %-7s %-7s %10s %12s %10s\n", "alpha", "beta", "gamma",
              "quality", "overhead", "objective");
  for (const ctrl::EvaluatedPoint& p : result.evaluated) {
    std::printf("  %-7.2f %-7.2f %-7.2f %10.3f %12.4f %10.3f\n",
                p.params.alpha, p.params.beta, p.params.gamma, p.quality,
                p.overhead, p.objective);
  }
  std::printf("\nbest: alpha=%.2f beta=%.2f gamma=%.2f  "
              "(quality %.3f at %.2f%% of baseline overhead)\n",
              result.best.params.alpha, result.best.params.beta,
              result.best.params.gamma, result.best.quality,
              100.0 * result.best.overhead);
  return 0;
}
