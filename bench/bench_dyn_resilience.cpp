// Dynamic resilience under churn: SCION baseline vs. SCION diversity vs.
// BGP recovering end-to-end connectivity through the *same* fault scenario
// (link flaps by default; any scenario via --faults=FILE). Reports per-
// algorithm recovery-time distributions and availability. Expected shape:
// the diversity algorithm's path sets survive more faults outright (fewer
// outages, higher availability), and when a pair does black out, stored
// alternative paths recover it without waiting for BGP-style re-convergence.
//
// Extra flags on top of the Scale set:
//   --faults=FILE             fault scenario (fault_plan.hpp format)
//   --probe-interval-s=N      connectivity probe cadence (default 10)
//   --churn-minutes=N         measurement window (default 60)
//   --flap-rate-per-hour=R    default scenario churn rate (default 60)
#include <cstdlib>
#include <iostream>
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/resilience_experiment.hpp"

namespace scion::exp {
namespace {

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::optional<DynResilienceResult> g_result;

DynResilienceConfig bench_config(const Scale& scale) {
  DynResilienceConfig config;
  config.sampled_pairs = scale.sampled_pairs / 2;
  config.sim_duration =
      util::Duration::minutes(bench_flags().get_int("churn-minutes", 60));
  config.probe_interval =
      util::Duration::seconds(bench_flags().get_int("probe-interval-s", 10));
  config.default_flap_rate_per_hour =
      bench_flags().get_double("flap-rate-per-hour", 60.0);
  config.seed = scale.seed;
  const std::string faults_file = bench_flags().get("faults", "");
  if (!faults_file.empty()) {
    std::string error;
    if (!faults::FaultPlan::parse_file(faults_file, &config.faults, &error)) {
      std::cerr << "bench_dyn_resilience: " << error << '\n';
      std::exit(1);
    }
  }
  return config;
}

void BM_DynResilience(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    const topo::Topology internet = build_internet(scale);
    const CoreNetworks nets = build_core_networks(scale, internet);
    g_result = run_dyn_resilience_experiment(nets.bgp_view, nets.scion_view,
                                             bench_config(scale));
  }
  if (g_result) {
    for (const DynResilienceSeries& s : g_result->series) {
      state.counters["availability:" + s.name] = s.availability;
      state.counters["outages:" + s.name] = static_cast<double>(s.outages);
    }
  }
}
BENCHMARK(BM_DynResilience)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  using scion::exp::g_result;
  return scion::exp::bench_main(
      "dyn_resilience", argc, argv,
      [] {
        if (g_result) {
          scion::obs::print_line(
              "\nDynamic resilience — recovery under fault injection");
          scion::exp::print_dyn_resilience(*g_result);
        }
      },
      [](scion::exp::BenchReport& report) {
        if (!g_result) return;
        report.table(scion::exp::dyn_resilience_table(*g_result));
        for (const scion::exp::DynResilienceSeries& s : g_result->series) {
          if (!s.recovery_seconds.empty()) {
            report.cdf("recovery_seconds:" + s.name, s.recovery_seconds, 32);
          }
          report.scalar("availability:" + s.name, s.availability);
          report.scalar("outages:" + s.name, static_cast<double>(s.outages));
          report.scalar("recovered:" + s.name,
                        static_cast<double>(s.recovered));
          report.scalar("unrecovered:" + s.name,
                        static_cast<double>(s.unrecovered));
          report.scalar("faults_injected:" + s.name,
                        static_cast<double>(s.fault_stats.link_down_events));
          report.scalar("messages_dropped:" + s.name,
                        static_cast<double>(s.drops.total()));
          report.scalar("pcbs_revoked:" + s.name,
                        static_cast<double>(s.pcbs_revoked));
        }
      });
}
