// Table 1: path management overhead comparison. Runs the full SCION
// control plane (both beaconing levels, path servers, lookups,
// registrations, revocations) on a multi-ISD topology and prints the
// measured scope x frequency table.
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/table1_experiment.hpp"

namespace scion::exp {
namespace {

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::optional<Table1Result> g_result;

Table1Config config_from_flags() {
  const util::Flags& flags = bench_flags();
  Table1Config config;
  config.topology.n_isds =
      static_cast<std::size_t>(flags.get_int("isds", 4));
  config.topology.cores_per_isd =
      static_cast<std::size_t>(flags.get_int("cores-per-isd", 3));
  config.topology.ases_per_isd =
      static_cast<std::size_t>(flags.get_int("isd-size", 16));
  config.sim_duration =
      util::Duration::minutes(flags.get_int("minutes", 60));
  config.lookups_per_second = flags.get_double("lookups-per-second", 2.0);
  config.link_failures_per_hour = flags.get_double("failures-per-hour", 4.0);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 5));
  return config;
}

void BM_Table1ControlPlane(benchmark::State& state) {
  for (auto _ : state) {
    g_result = run_table1_experiment(config_from_flags());
  }
  if (g_result) {
    state.counters["components"] =
        static_cast<double>(g_result->ledger.rows().size());
    state.counters["lookups"] = static_cast<double>(g_result->lookups);
    state.counters["total_bytes"] =
        static_cast<double>(g_result->ledger.total_bytes().value());
  }
}
BENCHMARK(BM_Table1ControlPlane)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  using scion::exp::g_result;
  return scion::exp::bench_main(
      "table1_overhead_scope", argc, argv,
      [] {
        if (g_result) scion::exp::print_table1(*g_result);
      },
      [](scion::exp::BenchReport& report) {
        if (!g_result) return;
        report.table(g_result->ledger.table("SCION control-plane components",
                                            g_result->window,
                                            g_result->participants));
        report.scalar("lookups", static_cast<double>(g_result->lookups));
        report.scalar("paths_resolved",
                      static_cast<double>(g_result->paths_resolved));
        report.scalar("total_bytes",
                      static_cast<double>(g_result->ledger.total_bytes().value()));
      });
}
