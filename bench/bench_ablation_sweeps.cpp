// Parameter sweeps around the evaluation's fixed choices (Section 5.1):
// dissemination limit (paper: 5) and beaconing interval (paper: 10 min),
// for both algorithms, reporting overhead and capacity quality. These
// quantify the overhead/quality trade-off the fixed parameters sit on.
#include <cstdio>
#include <vector>

#include "analysis/path_quality.hpp"
#include "bench/bench_common.hpp"
#include "core/beaconing_sim.hpp"
#include "exec/task_pool.hpp"
// (<cstdio> stays for the snprintf label formatting in the sweep loops.)

namespace scion::exp {
namespace {

struct SweepRow {
  std::string label;
  util::Bytes bytes{};
  double fraction_of_optimal{0.0};
};

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::vector<SweepRow> g_rows;

SweepRow run_point(const std::string& label, const topo::Topology& scion_view,
                   ctrl::AlgorithmKind algorithm, std::size_t dissemination,
                   util::Duration interval, const Scale& scale) {
  ctrl::BeaconingSimConfig config;
  config.server.algorithm = algorithm;
  config.server.dissemination_limit = dissemination;
  config.server.interval = interval;
  config.server.compute_crypto = false;
  if (algorithm == ctrl::AlgorithmKind::kDiversity) {
    config.server.store_policy = ctrl::StorePolicy::kDiversityAware;
  }
  config.sim_duration = scale.quality_duration;
  config.seed = scale.seed;
  ctrl::BeaconingSim sim{scion_view, config};
  sim.run();

  analysis::QualityEvaluator evaluator{scion_view};
  util::Rng rng{scale.seed ^ 0x5EEB};
  double achieved = 0, optimal = 0;
  for (std::size_t i = 0; i < scale.sampled_pairs / 2; ++i) {
    const auto a = static_cast<topo::AsIndex>(rng.index(scion_view.as_count()));
    const auto b = static_cast<topo::AsIndex>(rng.index(scion_view.as_count()));
    if (a == b) continue;
    auto paths = sim.paths_at(a, scion_view.as_id(b));
    auto reverse = sim.paths_at(b, scion_view.as_id(a));
    paths.insert(paths.end(), reverse.begin(), reverse.end());
    achieved += evaluator.of_paths(paths, a, b);
    optimal += evaluator.optimal(a, b);
  }
  return SweepRow{label, sim.total_bytes(),
                  optimal > 0 ? achieved / optimal : 0};
}

/// One sweep point (its own simulator, evaluator, and rng — independent of
/// every other point, so the sweep fans out over the task pool).
struct PointSpec {
  std::string label;
  ctrl::AlgorithmKind algorithm{ctrl::AlgorithmKind::kBaseline};
  std::size_t dissemination{5};
  util::Duration interval{util::Duration::minutes(10)};
};

void BM_AblationSweeps(benchmark::State& state) {
  Scale scale = bench_scale();
  // Sweeps multiply runs; shrink the base topology a bit.
  scale.core_ases = std::min<std::size_t>(scale.core_ases, 48);
  for (auto _ : state) {
    g_rows.clear();
    const topo::Topology internet = build_internet(scale);
    const CoreNetworks nets = build_core_networks(scale, internet);

    std::vector<PointSpec> specs;
    for (const std::size_t limit : {1u, 5u, 10u}) {
      for (const auto algorithm : {ctrl::AlgorithmKind::kBaseline,
                                   ctrl::AlgorithmKind::kDiversity}) {
        char label[64];
        std::snprintf(label, sizeof label, "%s limit=%zu",
                      ctrl::to_string(algorithm), static_cast<size_t>(limit));
        specs.push_back(
            {label, algorithm, limit, util::Duration::minutes(10)});
      }
    }
    for (const int minutes : {5, 20}) {
      for (const auto algorithm : {ctrl::AlgorithmKind::kBaseline,
                                   ctrl::AlgorithmKind::kDiversity}) {
        char label[64];
        std::snprintf(label, sizeof label, "%s interval=%dm",
                      ctrl::to_string(algorithm), minutes);
        specs.push_back(
            {label, algorithm, 5, util::Duration::minutes(minutes)});
      }
    }
    // Honors --jobs via exec::default_jobs(); row order follows spec order
    // regardless of the worker count.
    g_rows = exec::parallel_map(specs, [&](const PointSpec& spec) {
      return run_point(spec.label, nets.scion_view, spec.algorithm,
                       spec.dissemination, spec.interval, scale);
    });
  }
}
BENCHMARK(BM_AblationSweeps)->Unit(benchmark::kSecond)->Iterations(1);

obs::Table sweep_table() {
  obs::Table t{"Dissemination-limit and interval sweeps",
               {obs::Column{"configuration", obs::Align::kLeft, 28},
                obs::Column{"bytes", obs::Align::kRight, 14},
                obs::Column{"capacity/optimal", obs::Align::kRight, 18}}};
  for (const auto& r : g_rows) {
    t.row({r.label, obs::fmt_u64(r.bytes.value()),
           obs::fmt_f(r.fraction_of_optimal, 3)});
  }
  return t;
}

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  return scion::exp::bench_main(
      "ablation_sweeps", argc, argv,
      [] {
        scion::obs::print_line("");
        scion::obs::print(scion::exp::sweep_table().to_text());
      },
      [](scion::exp::BenchReport& report) {
        report.table(scion::exp::sweep_table());
        for (const auto& r : scion::exp::g_rows) {
          report.scalar("capacity_of_optimal:" + r.label,
                        r.fraction_of_optimal);
          report.scalar("bytes:" + r.label, static_cast<double>(r.bytes.value()));
        }
      });
}
