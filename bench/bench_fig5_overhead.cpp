// Fig. 5: monthly control-plane overhead relative to BGP (CDF over monitor
// ASes) for BGPsec, SCION core beaconing (baseline + diversity-based), and
// SCION intra-ISD beaconing; plus the Section 5.2 per-path overhead
// numbers. Expected shape: BGPsec ~ one order of magnitude above BGP, core
// baseline at or above BGPsec, core diversity ~ one order of magnitude
// below BGP, intra-ISD ~ two orders below BGP.
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/overhead_experiment.hpp"

namespace scion::exp {
namespace {

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::optional<OverheadResult> g_result;

void BM_Fig5Overhead(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    g_result = run_overhead_experiment(scale);
  }
  // Guard every counter on its own CDF: median() on an empty CDF trips
  // SCION_CHECK, and tiny --scale runs can leave any of these empty.
  if (g_result && !g_result->core_diversity_rel.empty()) {
    state.counters["diversity_rel_median"] =
        g_result->core_diversity_rel.median();
  }
  if (g_result && !g_result->core_baseline_rel.empty()) {
    state.counters["baseline_rel_median"] =
        g_result->core_baseline_rel.median();
  }
  if (g_result && !g_result->bgpsec_rel.empty()) {
    state.counters["bgpsec_rel_median"] = g_result->bgpsec_rel.median();
  }
}
BENCHMARK(BM_Fig5Overhead)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  using scion::exp::g_result;
  return scion::exp::bench_main(
      "fig5_overhead", argc, argv,
      [] {
        if (g_result) scion::exp::print_overhead_result(*g_result);
      },
      [](scion::exp::BenchReport& report) {
        if (!g_result) return;
        report.cdf("bgpsec_rel", g_result->bgpsec_rel, 8);
        report.cdf("core_baseline_rel", g_result->core_baseline_rel, 8);
        report.cdf("core_diversity_rel", g_result->core_diversity_rel, 8);
        report.cdf("intra_rel", g_result->intra_rel, 8);
        report.scalar("per_path_bgp", g_result->per_path_bgp);
        report.scalar("per_path_bgpsec", g_result->per_path_bgpsec);
        report.scalar("per_path_core_baseline",
                      g_result->per_path_core_baseline);
        report.scalar("per_path_core_diversity",
                      g_result->per_path_core_diversity);
        report.scalar("diversity_paths_per_origin",
                      g_result->diversity_paths_per_origin);
        // Beaconing hot-loop allocation history, measured on the fixed-seed
        // micro-run gated by tests/test_alloc_budget.cpp (allocation counts
        // are deterministic per seed; the phases above carry this run's own
        // live counts when SCION_MPR_ALLOC_TRACK is on). "pre" is the cost
        // before the SmallFn/SmallAny event-loop storage and span-based
        // store admission landed; "budget" is the enforced ceiling.
        report.scalar("beaconing_allocs_per_pcb_event_pre", 10.280);
        report.scalar("beaconing_allocs_per_pcb_event_now", 7.473);
        report.scalar("beaconing_allocs_per_pcb_event_budget", 9.0);
      });
}
