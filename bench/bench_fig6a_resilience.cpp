// Fig. 6a: minimum number of failing links disconnecting two core ASes —
// optimum vs SCION diversity (storage 15/30/60/inf) vs SCION baseline (60)
// vs BGP multipath, grouped by the pair's optimum. Expected shape: baseline
// clearly above BGP (more than doubled for small optima), diversity close
// to the optimum.
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/quality_experiment.hpp"

namespace scion::exp {
namespace {

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::optional<QualityResult> g_result;

void BM_Fig6aResilience(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    const topo::Topology internet = build_internet(scale);
    const CoreNetworks nets = build_core_networks(scale, internet);
    QualityConfig config;
    config.diversity_storage_limits = {15, 30, 60, 0};
    config.baseline_storage_limits = {60};
    config.include_bgp = true;
    config.sampled_pairs = scale.sampled_pairs;
    config.sim_duration = scale.quality_duration;
    config.seed = scale.seed;
    g_result = run_quality_experiment(nets.bgp_view, nets.scion_view, config);
  }
  if (g_result) {
    for (const QualitySeries& s : g_result->series) {
      state.counters["opt_frac:" + s.name] = g_result->fraction_of_optimal(s);
    }
  }
}
BENCHMARK(BM_Fig6aResilience)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  using scion::exp::g_result;
  return scion::exp::bench_main(
      "fig6a_resilience", argc, argv,
      [] {
        if (g_result) {
          scion::obs::print_line(
              "\nFig. 6a — link failure resilience (core network)");
          scion::exp::print_resilience(*g_result, 15);
        }
      },
      [](scion::exp::BenchReport& report) {
        if (!g_result) return;
        report.table(scion::exp::resilience_table(*g_result, 15));
        for (const scion::exp::QualitySeries& s : g_result->series) {
          report.scalar("opt_frac:" + s.name,
                        g_result->fraction_of_optimal(s));
        }
      });
}
