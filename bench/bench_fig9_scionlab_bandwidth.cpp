// Fig. 9 (Appendix B): CDF of core-beaconing bandwidth per interface on the
// SCIONLab testbed topology (baseline algorithm, full-size signed PCBs).
// Expected shape: the large majority of interfaces stay below 4 KB/s.
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/scionlab_experiment.hpp"

namespace scion::exp {
namespace {

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::optional<ScionLabResult> g_result;

void BM_Fig9ScionLabBandwidth(benchmark::State& state) {
  Scale scale = bench_scale();
  // Fig. 9 only needs the bandwidth run; shrink the quality part.
  scale.sampled_pairs = std::min<std::size_t>(scale.sampled_pairs, 40);
  for (auto _ : state) {
    g_result = run_scionlab_experiment(scale);
  }
  if (g_result) {
    state.counters["below_4KBps"] = g_result->fraction_below_4kbps;
    // median() on an empty CDF trips SCION_CHECK.
    if (!g_result->bandwidth.empty()) {
      state.counters["median_Bps"] = g_result->bandwidth.median();
    }
  }
}
BENCHMARK(BM_Fig9ScionLabBandwidth)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  using scion::exp::g_result;
  return scion::exp::bench_main(
      "fig9_scionlab_bandwidth", argc, argv,
      [] {
        if (g_result) scion::exp::print_scionlab_bandwidth(*g_result);
      },
      [](scion::exp::BenchReport& report) {
        if (!g_result) return;
        report.cdf("interface_bandwidth_Bps", g_result->bandwidth, 10);
        report.scalar("fraction_below_4kbps", g_result->fraction_below_4kbps);
        if (!g_result->bandwidth.empty()) {
          report.scalar("median_Bps", g_result->bandwidth.median());
        }
      });
}
