// Extension bench (Section 4.2, "Optimizing for other Criteria"): the
// paper leaves multi-criteria optimization as future work but sketches the
// ingredients — disseminating measured latency through PCBs and letting
// path construction optimize for it. This bench implements that sketch:
// the diversity algorithm with and without the latency extension, reporting
// (a) the metadata's wire-size cost and (b) the latency of the disseminated
// paths endpoints end up with.
#include <vector>

#include "bench/bench_common.hpp"
#include "core/beaconing_sim.hpp"
#include "util/stats.hpp"

namespace scion::exp {
namespace {

struct LatencyRunResult {
  std::string name;
  util::Bytes bytes{};
  /// Mean over sampled pairs of the best (lowest) disseminated path
  /// latency, in milliseconds, estimated from the PCB metadata.
  double mean_best_latency_ms{0.0};
  double mean_path_latency_ms{0.0};
};

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::vector<LatencyRunResult> g_results;

LatencyRunResult run(const std::string& name,
                     const topo::Topology& scion_view, double latency_weight,
                     bool carry_metadata, const Scale& scale) {
  ctrl::BeaconingSimConfig config;
  config.server.algorithm = ctrl::AlgorithmKind::kDiversity;
  config.server.store_policy = ctrl::StorePolicy::kDiversityAware;
  config.server.compute_crypto = false;
  config.server.include_latency_metadata = carry_metadata;
  config.server.diversity.latency_weight = latency_weight;
  config.sim_duration = scale.quality_duration;
  config.seed = scale.seed;
  ctrl::BeaconingSim sim{scion_view, config};
  sim.run();

  LatencyRunResult result;
  result.name = name;
  result.bytes = sim.total_bytes();

  util::Rng rng{scale.seed ^ 0x1A7E};
  util::OnlineStats best_latency, all_latency;
  for (std::size_t i = 0; i < scale.sampled_pairs; ++i) {
    const auto a = static_cast<topo::AsIndex>(rng.index(scion_view.as_count()));
    const auto b = static_cast<topo::AsIndex>(rng.index(scion_view.as_count()));
    if (a == b) continue;
    double best = -1.0;
    for (const ctrl::StoredPcb& stored :
         sim.server(a).store().for_origin(scion_view.as_id(b))) {
      const double ms =
          static_cast<double>(stored.pcb->total_latency_us()) / 1000.0;
      all_latency.add(ms);
      if (best < 0 || ms < best) best = ms;
    }
    if (best >= 0) best_latency.add(best);
  }
  result.mean_best_latency_ms = best_latency.mean();
  result.mean_path_latency_ms = all_latency.mean();
  return result;
}

void BM_LatencyExtension(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    g_results.clear();
    const topo::Topology internet = build_internet(scale);
    const CoreNetworks nets = build_core_networks(scale, internet);
    // Metadata carried in both runs so path latencies are observable; the
    // weight toggles whether selection *optimizes* for it.
    g_results.push_back(
        run("diversity (latency-blind)", nets.scion_view, 0.0, true, scale));
    g_results.push_back(
        run("diversity + latency opt", nets.scion_view, 1.0, true, scale));
    g_results.push_back(
        run("diversity, no metadata", nets.scion_view, 0.0, false, scale));
  }
}
BENCHMARK(BM_LatencyExtension)->Unit(benchmark::kSecond)->Iterations(1);

obs::Table latency_table() {
  obs::Table t{"Latency-optimization extension (Section 4.2 future work)",
               {obs::Column{"variant", obs::Align::kLeft, 28},
                obs::Column{"bytes", obs::Align::kRight, 14},
                obs::Column{"best path (ms)", obs::Align::kRight, 18},
                obs::Column{"all paths (ms)", obs::Align::kRight, 18}}};
  for (const auto& r : g_results) {
    t.row({r.name, obs::fmt_u64(r.bytes.value()), obs::fmt_f(r.mean_best_latency_ms, 2),
           obs::fmt_f(r.mean_path_latency_ms, 2)});
  }
  return t;
}

double metadata_cost_percent() {
  if (g_results.size() < 3) return 0.0;
  return 100.0 * (static_cast<double>(g_results[0].bytes.value()) /
                      static_cast<double>(g_results[2].bytes.value()) -
                  1.0);
}

double latency_shift_ms() {
  if (g_results.size() < 3) return 0.0;
  return g_results[1].mean_path_latency_ms - g_results[0].mean_path_latency_ms;
}

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  return scion::exp::bench_main(
      "ext_latency", argc, argv,
      [] {
        scion::obs::print_line("");
        scion::obs::print(scion::exp::latency_table().to_text());
        if (scion::exp::g_results.size() >= 3) {
          scion::obs::print_line(
              "\n  metadata wire cost: " +
              scion::obs::fmt_f(scion::exp::metadata_cost_percent(), 2) +
              "% bytes; latency-aware selection shifts the disseminated set "
              "by " +
              scion::obs::fmt_f(scion::exp::latency_shift_ms(), 1) +
              " ms on average");
        }
      },
      [](scion::exp::BenchReport& report) {
        report.table(scion::exp::latency_table());
        if (scion::exp::g_results.size() >= 3) {
          report.scalar("metadata_cost_percent",
                        scion::exp::metadata_cost_percent());
          report.scalar("latency_shift_ms", scion::exp::latency_shift_ms());
        }
      });
}
