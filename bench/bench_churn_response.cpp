// Churn response: how each control plane survives a sustained heavy-tailed
// link-flap process plus scheduled session restarts. Five series replay the
// same scenario — plain BGP, BGP with route-flap damping, BGP with graceful
// restart, SCION baseline beaconing, and SCION with staleness quarantine +
// re-origination backoff — each paired with a clean replica of itself, so
// the reported amplification is churn traffic over steady-state traffic.
// Expected shape: damping trades convergence lag for suppressed flapping
// routes (lower amplification); graceful restart rides out session restarts
// without losing forwarding (higher availability than plain BGP); the SCION
// robust series refills stores faster than revocation-evict beaconing.
//
// Extra flags on top of the Scale set:
//   --faults=FILE             fault scenario (fault_plan.hpp format)
//   --probe-interval-s=N      connectivity probe cadence (default 10)
//   --churn-minutes=N         measurement window (default 60)
//   --link-fraction=F         fraction of links that churn (default 0.5)
#include <cstdlib>
#include <iostream>
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/churn_experiment.hpp"

namespace scion::exp {
namespace {

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::optional<ChurnResult> g_result;

ChurnConfig bench_config(const Scale& scale) {
  ChurnConfig config;
  config.sampled_pairs = scale.sampled_pairs / 3;
  config.sim_duration =
      util::Duration::minutes(bench_flags().get_int("churn-minutes", 60));
  config.probe_interval =
      util::Duration::seconds(bench_flags().get_int("probe-interval-s", 10));
  config.churn_link_fraction = bench_flags().get_double("link-fraction", 0.5);
  config.seed = scale.seed;
  const std::string faults_file = bench_flags().get("faults", "");
  if (!faults_file.empty()) {
    std::string error;
    if (!faults::FaultPlan::parse_file(faults_file, &config.faults, &error)) {
      std::cerr << "bench_churn_response: " << error << '\n';
      std::exit(1);
    }
  }
  return config;
}

void BM_ChurnResponse(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    const topo::Topology internet = build_internet(scale);
    const CoreNetworks nets = build_core_networks(scale, internet);
    g_result = run_churn_experiment(nets.bgp_view, nets.scion_view,
                                    bench_config(scale));
  }
  if (g_result) {
    for (const ChurnSeries& s : g_result->series) {
      state.counters["availability:" + s.name] = s.availability;
      state.counters["amplification:" + s.name] = s.amplification;
    }
  }
}
BENCHMARK(BM_ChurnResponse)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  using scion::exp::g_result;
  return scion::exp::bench_main(
      "churn_response", argc, argv,
      [] {
        if (g_result) {
          scion::obs::print_line(
              "\nChurn response — survival mechanisms under sustained churn");
          scion::exp::print_churn(*g_result);
        }
      },
      [](scion::exp::BenchReport& report) {
        if (!g_result) return;
        report.table(scion::exp::churn_table(*g_result));
        for (const scion::exp::ChurnSeries& s : g_result->series) {
          if (!s.convergence_seconds.empty()) {
            report.cdf("convergence_seconds:" + s.name, s.convergence_seconds,
                       32);
          }
          report.scalar("availability:" + s.name, s.availability);
          report.scalar("amplification:" + s.name, s.amplification);
          report.scalar("outages:" + s.name, static_cast<double>(s.outages));
          report.scalar("recovered:" + s.name,
                        static_cast<double>(s.recovered));
          report.scalar("unrecovered:" + s.name,
                        static_cast<double>(s.unrecovered));
          report.scalar("control_messages:" + s.name,
                        static_cast<double>(s.control_messages));
          report.scalar("control_messages_clean:" + s.name,
                        static_cast<double>(s.control_messages_clean));
          report.scalar("routes_suppressed:" + s.name,
                        static_cast<double>(s.routes_suppressed));
          report.scalar("routes_reused:" + s.name,
                        static_cast<double>(s.routes_reused));
          report.scalar("stale_retained:" + s.name,
                        static_cast<double>(s.stale_retained));
          report.scalar("stale_expired:" + s.name,
                        static_cast<double>(s.stale_expired));
          report.scalar("pcbs_quarantined:" + s.name,
                        static_cast<double>(s.pcbs_quarantined));
          report.scalar("pcbs_revalidated:" + s.name,
                        static_cast<double>(s.pcbs_revalidated));
          report.scalar("reoriginations:" + s.name,
                        static_cast<double>(s.reoriginations));
          report.scalar("churn_events:" + s.name,
                        static_cast<double>(s.fault_stats.churn_events));
          report.scalar("session_restarts:" + s.name,
                        static_cast<double>(s.fault_stats.session_restarts));
        }
      });
}
