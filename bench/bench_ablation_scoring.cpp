// Ablation of the scoring function's design choices (Section 4.2):
//   - full:        the paper's scoring (Eqs. 1-3, link-disjointness)
//   - no-age:      alpha = 0 — fresh PCBs never decay (Eq. 2 disabled)
//   - no-suppress: gamma = 0 — previously sent paths score like new ones
//                  (Eq. 3 disabled), so every interval resends
//   - as-disjoint: counters keyed per AS pair instead of per link, the
//                  alternative the paper rejects because it wastes the
//                  resilience of parallel links
// For each variant: control-plane bytes and fraction-of-optimal capacity.
#include <vector>

#include "analysis/path_quality.hpp"
#include "bench/bench_common.hpp"
#include "core/beaconing_sim.hpp"

namespace scion::exp {
namespace {

struct VariantResult {
  std::string name;
  util::Bytes bytes{};
  std::uint64_t pcbs{0};
  double fraction_of_optimal{0.0};
};

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::vector<VariantResult> g_results;

VariantResult run_variant(const std::string& name,
                          const topo::Topology& scion_view,
                          const ctrl::DiversityParams& params,
                          bool as_disjoint, const Scale& scale) {
  ctrl::BeaconingSimConfig config;
  config.server.algorithm = ctrl::AlgorithmKind::kDiversity;
  config.server.store_policy = ctrl::StorePolicy::kDiversityAware;
  config.server.diversity = params;
  config.server.compute_crypto = false;
  if (as_disjoint) {
    config.server.diversity_link_canonicalizer =
        ctrl::as_pair_canonicalizer(scion_view);
  }
  config.sim_duration = scale.quality_duration;
  config.seed = scale.seed;
  ctrl::BeaconingSim sim{scion_view, config};
  sim.run();

  VariantResult result;
  result.name = name;
  result.bytes = sim.total_bytes();
  result.pcbs = sim.total_pcbs_sent();

  // Capacity vs optimum over sampled pairs.
  analysis::QualityEvaluator evaluator{scion_view};
  util::Rng rng{scale.seed ^ 0xAB1A};
  double achieved = 0, optimal = 0;
  for (std::size_t i = 0; i < scale.sampled_pairs; ++i) {
    const auto a = static_cast<topo::AsIndex>(rng.index(scion_view.as_count()));
    const auto b = static_cast<topo::AsIndex>(rng.index(scion_view.as_count()));
    if (a == b) continue;
    auto paths = sim.paths_at(a, scion_view.as_id(b));
    auto reverse = sim.paths_at(b, scion_view.as_id(a));
    paths.insert(paths.end(), reverse.begin(), reverse.end());
    achieved += evaluator.of_paths(paths, a, b);
    optimal += evaluator.optimal(a, b);
  }
  result.fraction_of_optimal = optimal > 0 ? achieved / optimal : 0;
  return result;
}

void BM_AblationScoring(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    g_results.clear();
    const topo::Topology internet = build_internet(scale);
    const CoreNetworks nets = build_core_networks(scale, internet);

    ctrl::DiversityParams full;
    g_results.push_back(
        run_variant("full", nets.scion_view, full, false, scale));

    ctrl::DiversityParams no_age = full;
    no_age.alpha = 0.0;
    g_results.push_back(
        run_variant("no-age (alpha=0)", nets.scion_view, no_age, false, scale));

    ctrl::DiversityParams no_suppress = full;
    no_suppress.gamma = 0.0;  // g == 1 regardless of remaining lifetime
    no_suppress.beta = 0.0;   // and Eq. 3's ratio never suppresses
    g_results.push_back(run_variant("no-suppress (beta=gamma=0)",
                                    nets.scion_view, no_suppress, false,
                                    scale));

    // The alternative reading of the Link History Table in which counters
    // decrement when sent paths expire: the footprint re-floods every PCB
    // lifetime (see scoring.hpp).
    ctrl::DiversityParams decrement = full;
    decrement.decrement_on_expiry = true;
    g_results.push_back(run_variant("decrement-on-expiry", nets.scion_view,
                                    decrement, false, scale));

    g_results.push_back(
        run_variant("as-disjoint counters", nets.scion_view, full, true, scale));
  }
}
BENCHMARK(BM_AblationScoring)->Unit(benchmark::kSecond)->Iterations(1);

obs::Table ablation_table() {
  obs::Table t{"Scoring-function ablation (diversity algorithm variants)",
               {obs::Column{"variant", obs::Align::kLeft, 28},
                obs::Column{"bytes", obs::Align::kRight, 14},
                obs::Column{"PCBs", obs::Align::kRight, 10},
                obs::Column{"capacity/optimal", obs::Align::kRight, 18}}};
  for (const auto& r : g_results) {
    t.row({r.name, obs::fmt_u64(r.bytes.value()), obs::fmt_u64(r.pcbs),
           obs::fmt_f(r.fraction_of_optimal, 3)});
  }
  return t;
}

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  return scion::exp::bench_main(
      "ablation_scoring", argc, argv,
      [] {
        scion::obs::print_line("");
        scion::obs::print(scion::exp::ablation_table().to_text());
      },
      [](scion::exp::BenchReport& report) {
        report.table(scion::exp::ablation_table());
        for (const auto& r : scion::exp::g_results) {
          report.scalar("capacity_of_optimal:" + r.name,
                        r.fraction_of_optimal);
          report.scalar("bytes:" + r.name, static_cast<double>(r.bytes.value()));
        }
      });
}
