// Fig. 8 (Appendix B): maximum capacity between SCIONLab core AS pairs in
// multiples of inter-AS links (CDF), same series as Fig. 7.
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/scionlab_experiment.hpp"

namespace scion::exp {
namespace {

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::optional<ScionLabResult> g_result;

void BM_Fig8ScionLabCapacity(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    g_result = run_scionlab_experiment(scale);
  }
  if (g_result) {
    for (const QualitySeries& s : g_result->quality.series) {
      state.counters["opt_frac:" + s.name] =
          g_result->quality.fraction_of_optimal(s);
    }
  }
}
BENCHMARK(BM_Fig8ScionLabCapacity)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  using scion::exp::g_result;
  return scion::exp::bench_main(
      "fig8_scionlab_capacity", argc, argv,
      [] {
        if (g_result) {
          scion::obs::print_line(
              "\nFig. 8 — maximum capacity (SCIONLab testbed)");
          scion::exp::print_capacity(g_result->quality);
        }
      },
      [](scion::exp::BenchReport& report) {
        if (!g_result) return;
        report.table(scion::exp::capacity_table(g_result->quality));
        for (const scion::exp::QualitySeries& s : g_result->quality.series) {
          report.scalar("opt_frac:" + s.name,
                        g_result->quality.fraction_of_optimal(s));
        }
      });
}
