// Fig. 8 (Appendix B): maximum capacity between SCIONLab core AS pairs in
// multiples of inter-AS links (CDF), same series as Fig. 7.
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/scionlab_experiment.hpp"

namespace scion::exp {
namespace {

std::optional<ScionLabResult> g_result;

void BM_Fig8ScionLabCapacity(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    g_result = run_scionlab_experiment(scale);
  }
  if (g_result) {
    for (const QualitySeries& s : g_result->quality.series) {
      state.counters["opt_frac:" + s.name] =
          g_result->quality.fraction_of_optimal(s);
    }
  }
}
BENCHMARK(BM_Fig8ScionLabCapacity)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  return scion::exp::bench_main(argc, argv, [] {
    if (scion::exp::g_result) {
      std::printf("\nFig. 8 — maximum capacity (SCIONLab testbed)\n");
      scion::exp::print_capacity(scion::exp::g_result->quality);
    }
  });
}
