// Fig. 6b: maximum capacity between core AS pairs in multiples of inter-AS
// link capacity (CDF). Expected shape: BGP lowest, baseline in between,
// diversity close to optimal until the storage limit binds (paper: ~99/97/
// 95/82 % of optimal capacity across the storage limits).
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/quality_experiment.hpp"

namespace scion::exp {
namespace {

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::optional<QualityResult> g_result;

void BM_Fig6bCapacity(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    const topo::Topology internet = build_internet(scale);
    const CoreNetworks nets = build_core_networks(scale, internet);
    QualityConfig config;
    config.diversity_storage_limits = {15, 30, 60, 0};
    config.baseline_storage_limits = {60};
    config.include_bgp = true;
    config.sampled_pairs = scale.sampled_pairs;
    config.sim_duration = scale.quality_duration;
    config.seed = scale.seed;
    g_result = run_quality_experiment(nets.bgp_view, nets.scion_view, config);
  }
  if (g_result) {
    for (const QualitySeries& s : g_result->series) {
      state.counters["opt_frac:" + s.name] = g_result->fraction_of_optimal(s);
    }
  }
}
BENCHMARK(BM_Fig6bCapacity)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  using scion::exp::g_result;
  return scion::exp::bench_main(
      "fig6b_capacity", argc, argv,
      [] {
        if (g_result) {
          scion::obs::print_line("\nFig. 6b — maximum capacity (core network)");
          scion::exp::print_capacity(*g_result);
        }
      },
      [](scion::exp::BenchReport& report) {
        if (!g_result) return;
        report.table(scion::exp::capacity_table(*g_result));
        for (const scion::exp::QualitySeries& s : g_result->series) {
          report.scalar("opt_frac:" + s.name,
                        g_result->fraction_of_optimal(s));
        }
      });
}
