// Shared plumbing for the per-figure bench binaries.
//
// Every binary runs standalone with no arguments at the default scale and
// accepts the Scale flags (--paper, --core-ases=..., REPRO_* environment
// variables) plus google-benchmark's own flags. The experiment executes
// once inside a single-iteration google-benchmark (so the suite reports its
// wall time), and the figure's series are printed afterwards.
//
// Telemetry: every bench owns an obs::ObsSession, so the common flags
// --metrics-out / --trace-out / --trace-filter / --chrome-trace-out work on
// all of them, and a machine-readable report BENCH_<name>.json (manifest +
// metrics + phase profile + event profile + per-figure data) is written
// after the run:
//   --bench-out=FILE   report path (default BENCH_<name>.json; "none"
//                      disables the report)
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "exec/task_pool.hpp"
#include "experiments/scale.hpp"
#include "obs/event_profile.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/report.hpp"
#include "obs/session.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

namespace scion::exp {

inline util::Flags& bench_flags() {
  // Parsed once in main() before any benchmark runs; read-only after.
  // simlint:allow(mutable-global)
  static util::Flags flags;
  return flags;
}

inline Scale bench_scale() { return Scale::from_flags(bench_flags()); }

/// Per-figure data a bench binary contributes to its BENCH_<name>.json:
/// headline scalars, CDF series, and rendered tables.
class BenchReport {
 public:
  void scalar(const std::string& name, double value) {
    scalars_.emplace_back(name, value);
  }

  void cdf(const std::string& name, const util::EmpiricalCdf& c,
           std::size_t points) {
    obs::JsonWriter w;
    obs::append_cdf_json(w, c, points);
    series_.emplace_back(name, std::move(w).take());
  }

  void table(const obs::Table& t) {
    obs::JsonWriter w;
    t.append_json(w);
    tables_.push_back(std::move(w).take());
  }

  /// Appends the "scalars", "series" and "tables" members to an open object.
  void append_json(obs::JsonWriter& w) const {
    w.key("scalars").begin_object();
    for (const auto& [name, value] : scalars_) w.kv(name, value);
    w.end_object();
    w.key("series").begin_object();
    for (const auto& [name, json] : series_) w.key(name).value_raw(json);
    w.end_object();
    w.key("tables").begin_array();
    for (const std::string& json : tables_) w.value_raw(json);
    w.end_array();
  }

 private:
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, std::string>> series_;
  std::vector<std::string> tables_;
};

/// {"schema": "scion-mpr-bench-v1", "name": ..., "manifest": {...},
///  "metrics": {...}, "phases": [...], "event_profile": {...},
///  "scalars": {...}, "series": {...}, "tables": [...]}
inline std::string bench_report_json(const std::string& name,
                                     const obs::ObsSession& session,
                                     const BenchReport& report) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "scion-mpr-bench-v1");
  w.kv("name", name);
  w.key("manifest").begin_object();
  session.manifest().append_fields(w);
  w.end_object();
  w.key("metrics").value_raw(obs::MetricsRegistry::global().to_json());
  w.key("phases").value_raw(obs::PhaseProfiler::global().to_json());
  w.key("event_profile").value_raw(obs::EventProfiler::global().to_json());
  report.append_json(w);
  w.end_object();
  return std::move(w).take();
}

/// Runs benchmark initialization + the registered benchmarks, then `print`,
/// then (unless --bench-out=none) writes the JSON report; `fill` populates
/// the report's per-figure data from the bench's result.
inline int bench_main(const std::string& name, int argc, char** argv,
                      const std::function<void()>& print,
                      const std::function<void(BenchReport&)>& fill = {}) {
  bench_flags() = util::Flags{argc, argv};
  // --jobs=N parallelizes the experiment's independent units (default 1 =
  // serial). ObsSession records explicitly-set flags into the manifest, so
  // the job count lands in BENCH_<name>.json; results are byte-identical
  // for any value (tests/test_determinism.cpp).
  exec::set_default_jobs(static_cast<std::size_t>(
      std::max<std::int64_t>(1, bench_flags().get_int("jobs", 1))));
  obs::ObsSession session{"bench_" + name, bench_flags(), bench_scale().seed};
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (print) print();

  const std::string path =
      bench_flags().get("bench-out", "BENCH_" + name + ".json");
  if (path != "none") {
    BenchReport report;
    if (fill) fill(report);
    std::ofstream out{path};
    if (!out) {
      std::cerr << "bench: cannot open --bench-out file " << path << '\n';
      return 1;
    }
    out << bench_report_json(name, session, report) << '\n';
  }
  session.finish();
  return 0;
}

}  // namespace scion::exp
