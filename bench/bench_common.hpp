// Shared plumbing for the per-figure bench binaries.
//
// Every binary runs standalone with no arguments at the default scale and
// accepts the Scale flags (--paper, --core-ases=..., REPRO_* environment
// variables) plus google-benchmark's own flags. The experiment executes
// once inside a single-iteration google-benchmark (so the suite reports its
// wall time), and the figure's series are printed afterwards.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>

#include "experiments/scale.hpp"
#include "util/flags.hpp"

namespace scion::exp {

inline util::Flags& bench_flags() {
  static util::Flags flags;
  return flags;
}

inline Scale bench_scale() { return Scale::from_flags(bench_flags()); }

/// Runs benchmark initialization + the registered benchmarks, then `print`.
inline int bench_main(int argc, char** argv, const std::function<void()>& print) {
  bench_flags() = util::Flags{argc, argv};
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print();
  return 0;
}

}  // namespace scion::exp
