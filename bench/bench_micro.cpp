// Micro-benchmarks of the hot paths: PCB construction/verification, the two
// selection algorithms, max-flow, and the crypto primitives. These are the
// per-operation costs behind the end-to-end simulation times.
#include <benchmark/benchmark.h>

#include "analysis/maxflow.hpp"
#include "bench/bench_common.hpp"
#include "core/algorithms.hpp"
#include "core/pcb.hpp"
#include "crypto/sha256.hpp"
#include "topology/generator.hpp"
#include "util/rng.hpp"

namespace scion {
namespace {

using ctrl::IsdAsId;
using util::Duration;
using util::TimePoint;

constexpr std::uint64_t kDomain = crypto::kDefaultKeyDomainSeed;

// --- crypto ---------------------------------------------------------------------

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SignatureSign(benchmark::State& state) {
  const crypto::SigningKey key = crypto::SigningKey::derive(1, kDomain);
  const std::vector<std::uint8_t> data(256, 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sign(key, data));
  }
}
BENCHMARK(BM_SignatureSign);

void BM_HopMac(benchmark::State& state) {
  const crypto::ForwardingKey key = crypto::ForwardingKey::derive(1, kDomain);
  crypto::HopMac prev{};
  for (auto _ : state) {
    prev = crypto::hop_mac(key, 1, 2, 1000, prev);
    benchmark::DoNotOptimize(prev);
  }
}
BENCHMARK(BM_HopMac);

// --- PCB ------------------------------------------------------------------------

ctrl::Pcb make_chain(std::size_t hops, crypto::KeyStore& keys, bool sign) {
  const IsdAsId origin = IsdAsId::make(1, 1);
  ctrl::Pcb pcb =
      sign ? ctrl::Pcb::originate(
                 origin, topo::IfId{1}, TimePoint::origin(), Duration::hours(6),
                 keys.key_for(origin.value()),
                 crypto::ForwardingKey::derive(origin.value(), kDomain))
           : ctrl::Pcb::originate_unsigned(origin, topo::IfId{1},
                                           TimePoint::origin(),
                                           Duration::hours(6));
  for (std::size_t i = 1; i < hops; ++i) {
    const IsdAsId as = IsdAsId::make(1, 1 + i);
    if (sign) {
      pcb = pcb.extend_signed(
          as, topo::IfId{1}, topo::IfId{2}, {}, keys.key_for(as.value()),
          crypto::ForwardingKey::derive(as.value(), kDomain));
    } else {
      pcb = pcb.extend_unsigned(as, topo::IfId{1}, topo::IfId{2}, {});
    }
  }
  return pcb;
}

void BM_PcbExtendSigned(benchmark::State& state) {
  crypto::KeyStore keys{kDomain};
  const ctrl::Pcb base =
      make_chain(static_cast<std::size_t>(state.range(0)), keys, true);
  const IsdAsId self = IsdAsId::make(2, 999);
  const crypto::SigningKey sk = keys.key_for(self.value());
  const auto fk = crypto::ForwardingKey::derive(self.value(), kDomain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.extend_signed(self, topo::IfId{3}, topo::IfId{4}, {}, sk, fk));
  }
}
BENCHMARK(BM_PcbExtendSigned)->Arg(2)->Arg(5)->Arg(10);

void BM_PcbExtendUnsigned(benchmark::State& state) {
  crypto::KeyStore keys{kDomain};
  const ctrl::Pcb base =
      make_chain(static_cast<std::size_t>(state.range(0)), keys, false);
  const IsdAsId self = IsdAsId::make(2, 999);
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.extend_unsigned(self, topo::IfId{3}, topo::IfId{4}, {}));
  }
}
BENCHMARK(BM_PcbExtendUnsigned)->Arg(2)->Arg(5)->Arg(10);

void BM_PcbVerifyChain(benchmark::State& state) {
  crypto::KeyStore keys{kDomain};
  const ctrl::Pcb pcb =
      make_chain(static_cast<std::size_t>(state.range(0)), keys, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcb.verify(keys));
  }
}
BENCHMARK(BM_PcbVerifyChain)->Arg(2)->Arg(5)->Arg(10);

void BM_PcbPathKey(benchmark::State& state) {
  crypto::KeyStore keys{kDomain};
  const ctrl::Pcb pcb = make_chain(5, keys, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcb.path_key());
  }
}
BENCHMARK(BM_PcbPathKey);

// --- selection algorithms -----------------------------------------------------------

std::vector<ctrl::StoredPcb> make_bucket(std::size_t n, util::Rng& rng) {
  std::vector<ctrl::StoredPcb> bucket;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t hops = 2 + rng.index(4);
    ctrl::Pcb pcb = ctrl::Pcb::originate_unsigned(
        IsdAsId::make(1, 1), static_cast<topo::IfId>(1 + rng.index(200)),
        TimePoint::origin(), Duration::hours(6));
    std::vector<topo::LinkIndex> links{
        static_cast<topo::LinkIndex>(rng.index(300))};
    for (std::size_t h = 1; h < hops; ++h) {
      pcb = pcb.extend_unsigned(IsdAsId::make(1, 10 + h),
                                static_cast<topo::IfId>(1 + rng.index(200)),
                                static_cast<topo::IfId>(1 + rng.index(200)),
                                {});
      links.push_back(static_cast<topo::LinkIndex>(rng.index(300)));
    }
    ctrl::StoredPcb stored;
    stored.pcb = std::make_shared<const ctrl::Pcb>(std::move(pcb));
    stored.links = std::move(links);
    stored.received_at = TimePoint::origin();
    stored.path_key = stored.pcb->path_key();
    bucket.push_back(std::move(stored));
  }
  return bucket;
}

void BM_BaselineSelect(benchmark::State& state) {
  util::Rng rng{7};
  const auto bucket = make_bucket(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctrl::baseline_select(
        bucket, IsdAsId::make(9, 9), 5, 5, TimePoint::origin()));
  }
}
BENCHMARK(BM_BaselineSelect)->Arg(15)->Arg(60);

void BM_DiversitySelect(benchmark::State& state) {
  util::Rng rng{7};
  const auto bucket = make_bucket(static_cast<std::size_t>(state.range(0)), rng);
  const std::vector<topo::LinkIndex> egress{500, 501};
  for (auto _ : state) {
    state.PauseTiming();
    ctrl::DiversityState diversity{ctrl::DiversityParams{}};
    state.ResumeTiming();
    benchmark::DoNotOptimize(diversity.select_and_commit(
        bucket, IsdAsId::make(1, 1), IsdAsId::make(9, 9), egress, 5,
        TimePoint::origin()));
  }
}
BENCHMARK(BM_DiversitySelect)->Arg(15)->Arg(60);

// --- max-flow --------------------------------------------------------------------

void BM_MaxFlowCoreTopology(benchmark::State& state) {
  topo::HierarchyConfig config;
  config.n_ases = static_cast<std::size_t>(state.range(0));
  config.seed = 3;
  const topo::Topology internet = topo::generate_hierarchy(config);
  const topo::Topology core = topo::with_all_core_links(
      topo::make_core_network(internet, config.n_ases / 10, 4));
  analysis::FlowGraph graph = analysis::FlowGraph::from_topology(core);
  util::Rng rng{5};
  for (auto _ : state) {
    const auto s = static_cast<std::uint32_t>(rng.index(core.as_count()));
    auto t = static_cast<std::uint32_t>(rng.index(core.as_count()));
    if (t == s) t = (t + 1) % static_cast<std::uint32_t>(core.as_count());
    benchmark::DoNotOptimize(graph.max_flow(s, t));
  }
}
BENCHMARK(BM_MaxFlowCoreTopology)->Arg(400)->Arg(800);

}  // namespace
}  // namespace scion

int main(int argc, char** argv) {
  // No per-figure series; the report still carries manifest + metrics.
  return scion::exp::bench_main("micro", argc, argv, {});
}
