// Fig. 7 (Appendix B): minimum number of failing links disconnecting two
// SCIONLab core ASes — diversity (storage 5/10/15/60) vs baseline (5, which
// models the deployed "Measurement" series) vs the optimum. Expected shape:
// diversity beats the deployed algorithm in a growing share of pairs as the
// storage limit rises, with little benefit beyond 15.
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/scionlab_experiment.hpp"

namespace scion::exp {
namespace {

// Experiment result captured for the report writer; the bench harness runs
// experiments sequentially on the main thread. simlint:allow(mutable-global)
std::optional<ScionLabResult> g_result;

void BM_Fig7ScionLabResilience(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    g_result = run_scionlab_experiment(scale);
  }
}
BENCHMARK(BM_Fig7ScionLabResilience)->Unit(benchmark::kSecond)->Iterations(1);

/// Paper comparison: fraction of pairs where each diversity configuration
/// strictly beats the deployed (baseline-5) selection.
std::vector<std::pair<std::string, double>> beats_measurement(
    const QualityResult& r) {
  std::vector<std::pair<std::string, double>> out;
  const QualitySeries* measurement = nullptr;
  for (const QualitySeries& s : r.series) {
    if (s.name.find("Baseline (5)") != std::string::npos) measurement = &s;
  }
  if (measurement == nullptr) return out;
  for (const QualitySeries& s : r.series) {
    if (s.name.find("Diversity") == std::string::npos) continue;
    std::size_t better = 0;
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      better += s.values[i] > measurement->values[i];
    }
    out.emplace_back(s.name, static_cast<double>(better) /
                                 static_cast<double>(s.values.size()));
  }
  return out;
}

void print_beats_measurement(const QualityResult& r) {
  const auto beats = beats_measurement(r);
  if (beats.empty()) return;
  obs::print_line("\n  fraction of pairs where diversity beats the deployed "
                  "selection:");
  for (const auto& [name, fraction] : beats) {
    std::string line = "    " + name;
    if (name.size() < 24) line.append(24 - name.size(), ' ');
    obs::print_line(line + " " + obs::fmt_f(fraction, 2));
  }
}

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  using scion::exp::g_result;
  return scion::exp::bench_main(
      "fig7_scionlab_resilience", argc, argv,
      [] {
        if (g_result) {
          scion::obs::print_line(
              "\nFig. 7 — link failure resilience (SCIONLab testbed)");
          scion::exp::print_resilience(g_result->quality, 6);
          scion::exp::print_beats_measurement(g_result->quality);
        }
      },
      [](scion::exp::BenchReport& report) {
        if (!g_result) return;
        report.table(scion::exp::resilience_table(g_result->quality, 6));
        for (const auto& [name, fraction] :
             scion::exp::beats_measurement(g_result->quality)) {
          report.scalar("beats_measurement:" + name, fraction);
        }
      });
}
