// Fig. 7 (Appendix B): minimum number of failing links disconnecting two
// SCIONLab core ASes — diversity (storage 5/10/15/60) vs baseline (5, which
// models the deployed "Measurement" series) vs the optimum. Expected shape:
// diversity beats the deployed algorithm in a growing share of pairs as the
// storage limit rises, with little benefit beyond 15.
#include <optional>

#include "bench/bench_common.hpp"
#include "experiments/scionlab_experiment.hpp"

namespace scion::exp {
namespace {

std::optional<ScionLabResult> g_result;

void BM_Fig7ScionLabResilience(benchmark::State& state) {
  const Scale scale = bench_scale();
  for (auto _ : state) {
    g_result = run_scionlab_experiment(scale);
  }
}
BENCHMARK(BM_Fig7ScionLabResilience)->Unit(benchmark::kSecond)->Iterations(1);

/// Paper comparison: fraction of pairs where each diversity configuration
/// strictly beats the deployed (baseline-5) selection.
void print_beats_measurement(const QualityResult& r) {
  const QualitySeries* measurement = nullptr;
  for (const QualitySeries& s : r.series) {
    if (s.name.find("Baseline (5)") != std::string::npos) measurement = &s;
  }
  if (measurement == nullptr) return;
  std::printf("\n  fraction of pairs where diversity beats the deployed "
              "selection:\n");
  for (const QualitySeries& s : r.series) {
    if (s.name.find("Diversity") == std::string::npos) continue;
    std::size_t better = 0;
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      better += s.values[i] > measurement->values[i];
    }
    std::printf("    %-24s %.2f\n", s.name.c_str(),
                static_cast<double>(better) /
                    static_cast<double>(s.values.size()));
  }
}

}  // namespace
}  // namespace scion::exp

int main(int argc, char** argv) {
  return scion::exp::bench_main(argc, argv, [] {
    if (scion::exp::g_result) {
      std::printf("\nFig. 7 — link failure resilience (SCIONLab testbed)\n");
      scion::exp::print_resilience(scion::exp::g_result->quality, 6);
      scion::exp::print_beats_measurement(scion::exp::g_result->quality);
    }
  });
}
